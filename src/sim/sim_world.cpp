#include "sim/sim_world.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace twfd::sim {

// ---------------------------------------------------------------------------
// SimEndpoint
// ---------------------------------------------------------------------------

SimEndpoint::SimEndpoint(SimWorld* world, PeerId id, std::string name, Tick skew,
                         double drift)
    : world_(world), id_(id), name_(std::move(name)), skew_(skew), drift_(drift) {
  TWFD_CHECK_MSG(drift > -0.5 && drift < 0.5, "unphysical clock drift");
}

Tick SimEndpoint::now() const {
  const double local =
      static_cast<double>(skew_) + static_cast<double>(world_->now()) * (1.0 + drift_);
  return static_cast<Tick>(local);
}

Tick SimEndpoint::to_global(Tick local) const {
  const double g = (static_cast<double>(local) - static_cast<double>(skew_)) /
                   (1.0 + drift_);
  return static_cast<Tick>(g);
}

void SimEndpoint::send(PeerId to, std::span<const std::byte> data) {
  world_->dispatch_send(id_, to, std::vector<std::byte>(data.begin(), data.end()));
}

void SimEndpoint::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
}

TimerId SimEndpoint::schedule_at(Tick when, std::function<void()> fn) {
  return world_->schedule_local(*this, when, std::move(fn));
}

void SimEndpoint::cancel(TimerId id) { world_->cancel_timer(id); }

bool SimEndpoint::reschedule(TimerId id, Tick when) {
  return world_->reschedule_timer(*this, id, when);
}

// ---------------------------------------------------------------------------
// Link prototypes
// ---------------------------------------------------------------------------

LinkParams lan_link() {
  LinkParams p;
  p.delay = std::make_unique<trace::NormalDelay>(100e-6, 12e-6, 40e-6);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.0);
  return p;
}

LinkParams wan_link() {
  LinkParams p;
  p.delay = std::make_unique<trace::LogNormalDelay>(0.050, std::log(0.008), 0.45);
  p.loss = std::make_unique<trace::BernoulliLoss>(0.01);
  return p;
}

// ---------------------------------------------------------------------------
// SimWorld
// ---------------------------------------------------------------------------

SimWorld::SimWorld(std::uint64_t seed) : rng_(seed) {}
SimWorld::~SimWorld() = default;

SimEndpoint& SimWorld::add_endpoint(std::string name, Tick skew, double drift) {
  const PeerId id = endpoints_.size() + 1;
  endpoints_.emplace_back(
      new SimEndpoint(this, id, std::move(name), skew, drift));
  return *endpoints_.back();
}

void SimWorld::connect(const SimEndpoint& from, const SimEndpoint& to,
                       LinkParams params) {
  TWFD_CHECK(params.delay && params.loss);
  links_[{from.id(), to.id()}] = Link{std::move(params), kTickNegInfinity};
}

void SimWorld::connect_both(const SimEndpoint& a, const SimEndpoint& b,
                            const LinkParams& prototype) {
  LinkParams ab{prototype.delay->clone(), prototype.loss->clone(), prototype.fifo,
                prototype.bandwidth_bytes_per_s};
  LinkParams ba{prototype.delay->clone(), prototype.loss->clone(), prototype.fifo,
                prototype.bandwidth_bytes_per_s};
  connect(a, b, std::move(ab));
  connect(b, a, std::move(ba));
}

void SimWorld::disconnect(const SimEndpoint& from, const SimEndpoint& to) {
  links_.erase({from.id(), to.id()});
}

void SimWorld::disconnect_both(const SimEndpoint& a, const SimEndpoint& b) {
  disconnect(a, b);
  disconnect(b, a);
}

void SimWorld::post(Tick at_global, std::function<void()> fn, TimerId timer_id) {
  TWFD_CHECK_MSG(at_global >= now_, "event scheduled in the past");
  queue_.push(Event{at_global, order_counter_++, std::move(fn), timer_id});
}

void SimWorld::dispatch_send(PeerId from, PeerId to, std::vector<std::byte> data) {
  ++sent_;
  const auto it = links_.find({from, to});
  if (it == links_.end()) return;  // unroutable: silently dropped, like UDP
  Link& link = it->second;
  if (link.params.loss->lost(rng_)) return;

  // Bottleneck queueing: the datagram first waits for the link, holds it
  // for its serialization time, then experiences the path delay.
  Tick depart = now_;
  if (link.params.bandwidth_bytes_per_s > 0.0) {
    const double ser_s =
        static_cast<double>(data.size()) / link.params.bandwidth_bytes_per_s;
    depart = std::max(now_, link.busy_until) + ticks_from_seconds(ser_s);
    link.busy_until = depart;
  }
  Tick arrival = depart + ticks_from_seconds(link.params.delay->sample(rng_));
  if (link.params.fifo && arrival <= link.last_delivery) {
    arrival = link.last_delivery + ticks_from_us(1);
  }
  link.last_delivery = arrival;

  TWFD_CHECK(to >= 1 && to <= endpoints_.size());
  SimEndpoint* dest = endpoints_[to - 1].get();
  post(
      arrival,
      [this, dest, from, payload = std::move(data)]() {
        ++delivered_;
        if (dest->on_receive_) {
          // Arrival = delivery instant on the destination's local clock,
          // matching the live runtime's "stamp at RX" semantics.
          dest->on_receive_(from, std::span<const std::byte>(payload),
                            dest->now());
        }
      },
      kInvalidTimer);
}

TimerId SimWorld::schedule_local(SimEndpoint& ep, Tick local_when,
                                 std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  const Tick global_when = std::max(now_, ep.to_global(local_when));
  timers_.emplace(id, TimerRecord{std::move(fn), global_when, global_when});
  post(global_when, [this, id, global_when] { fire_timer(id, global_when); }, id);
  ++timer_stats_.scheduled;
  return id;
}

void SimWorld::cancel_timer(TimerId id) {
  if (timers_.erase(id) == 0) return;  // fired or unknown: no-op
  ++timer_stats_.cancelled;
  // The queue event stays behind as a stale entry; fire_timer skips it
  // when it surfaces (virtual time jumps there immediately, so unlike
  // the live loop no compaction pass is needed).
}

bool SimWorld::reschedule_timer(SimEndpoint& ep, TimerId id, Tick local_when) {
  const auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  TimerRecord& rec = it->second;
  rec.due_global = std::max(now_, ep.to_global(local_when));
  if (rec.due_global < rec.posted_at) {
    // The canonical event would surface too late; post a fresh one and
    // let the old event die as stale. Deadlines pushed *out* (the common
    // per-heartbeat re-arm) leave the queue untouched: fire_timer
    // re-posts lazily when the event surfaces early.
    rec.posted_at = rec.due_global;
    const Tick at = rec.posted_at;
    post(at, [this, id, at] { fire_timer(id, at); }, id);
  }
  ++timer_stats_.rescheduled;
  return true;
}

void SimWorld::fire_timer(TimerId id, Tick at) {
  const auto it = timers_.find(id);
  if (it == timers_.end() || it->second.posted_at != at) return;  // stale
  TimerRecord& rec = it->second;
  if (rec.due_global > at) {
    // Postponed by reschedule(); migrate the canonical event now.
    rec.posted_at = rec.due_global;
    const Tick new_at = rec.posted_at;
    post(new_at, [this, id, new_at] { fire_timer(id, new_at); }, id);
    return;
  }
  auto fn = std::move(rec.fn);
  timers_.erase(it);
  ++timer_stats_.fired;
  fn();
}

bool SimWorld::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the element is popped immediately after.
  auto& top = const_cast<Event&>(queue_.top());
  const Tick at = top.at;
  auto fn = std::move(top.fn);
  queue_.pop();
  TWFD_CHECK(at >= now_);
  now_ = at;
  fn();
  return true;
}

void SimWorld::run_until(Tick global_deadline) {
  while (!queue_.empty() && queue_.top().at <= global_deadline) step();
  now_ = std::max(now_, global_deadline);
}

std::size_t SimWorld::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace twfd::sim

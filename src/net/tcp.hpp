// Non-blocking IPv4 TCP primitives for the FDaaS control plane
// (src/api): a listening socket and a byte-stream connection.
//
// Hardening stance mirrors UdpSocket: constructors throw (setup errors
// are programming/deployment errors), but the accept/read/write hot
// paths never do. EINTR is retried, EAGAIN is reported as would-block,
// and everything else — ECONNRESET, EPIPE, ETIMEDOUT on connections;
// ECONNABORTED and the EMFILE/ENFILE resource-exhaustion family on
// accept — is counted and mapped to a closed/empty result, so an event
// loop can keep serving healthy clients while the counters surface the
// noise (FdaasServer folds them into its stats).
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "common/time.hpp"
#include "net/udp_socket.hpp"

namespace twfd::net {

class TcpListener {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral
    int backlog = 128;
  };

  /// Opens, binds (SO_REUSEADDR) and listens on 0.0.0.0:`port` with a
  /// non-blocking socket. Throws std::system_error on failure.
  explicit TcpListener(const Options& options);
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  struct Accepted {
    int fd = -1;  ///< non-blocking, TCP_NODELAY; ownership passes to the caller
    SocketAddress peer;
  };

  /// Non-blocking accept; std::nullopt when no connection is pending or
  /// the process/system is out of descriptors (see resource_failures()).
  /// Retries EINTR; connections that died in the backlog (ECONNABORTED/
  /// EPROTO) are skipped and counted.
  [[nodiscard]] std::optional<Accepted> accept();

  /// The locally bound port (resolved after ephemeral bind).
  [[nodiscard]] std::uint16_t local_port() const;
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Accept attempts that failed on descriptor/memory exhaustion
  /// (EMFILE/ENFILE/ENOBUFS/ENOMEM). The listen queue still holds the
  /// connection, so poll() will report the fd readable again immediately:
  /// callers should park accept interest briefly instead of spinning.
  [[nodiscard]] std::uint64_t resource_failures() const noexcept {
    return resource_failures_;
  }
  /// Connections that were already dead when accepted (ECONNABORTED etc).
  [[nodiscard]] std::uint64_t aborted_accepts() const noexcept {
    return aborted_accepts_;
  }

 private:
  void close_fd() noexcept;
  int fd_ = -1;
  std::uint64_t resource_failures_ = 0;
  std::uint64_t aborted_accepts_ = 0;
};

/// A non-blocking TCP connection (accepted or dialled). Never throws
/// after construction; peers vanishing mid-stream surface as kClosed
/// results plus a soft-error count, not exceptions.
class TcpConn {
 public:
  TcpConn() = default;
  /// Adopts `fd`, switching it to non-blocking + TCP_NODELAY.
  explicit TcpConn(int fd);
  ~TcpConn();

  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Dials `to`, waiting at most `timeout` for the handshake.
  /// std::nullopt on refusal/timeout/error.
  [[nodiscard]] static std::optional<TcpConn> connect(const SocketAddress& to,
                                                     Tick timeout);

  enum class IoStatus : std::uint8_t {
    kOk,          ///< bytes > 0 transferred
    kWouldBlock,  ///< no space / no data right now (bytes == 0)
    kClosed,      ///< orderly EOF or hard error; stop using the connection
  };
  struct IoResult {
    IoStatus status = IoStatus::kClosed;
    std::size_t bytes = 0;
  };

  /// Reads whatever is available into `buf` (at most buf.size()).
  [[nodiscard]] IoResult read_some(std::span<std::byte> buf);
  /// Writes as much of `buf` as the socket accepts (partial writes are
  /// normal). MSG_NOSIGNAL: a dead peer yields kClosed, never SIGPIPE.
  [[nodiscard]] IoResult write_some(std::span<const std::byte> buf);

  /// SO_SNDBUF / SO_RCVBUF requests, best effort (tests shrink them to
  /// provoke backpressure quickly).
  void set_send_buffer(int bytes) noexcept;
  void set_recv_buffer(int bytes) noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Hard errors observed on read/write (ECONNRESET, EPIPE, ETIMEDOUT,
  /// ...). Orderly EOF is not an error. Read from the owning thread.
  [[nodiscard]] std::uint64_t soft_errors() const noexcept { return soft_errors_; }

 private:
  int fd_ = -1;
  std::uint64_t soft_errors_ = 0;
};

}  // namespace twfd::net

// Single-threaded poll-based event loop implementing the Runtime
// interfaces (Clock / Transport / TimerService) over one UDP socket.
//
// Peers are registered (or auto-learned from inbound datagrams) and
// addressed by PeerId, mirroring the simulator's addressing so service
// code is identical in both worlds.
//
// Timer core (see docs/runtime.md): a hierarchical timing wheel
// (net::TimerWheel) — slab-backed records, per-slot intrusive lists,
// occupancy bitmaps. schedule/cancel/reschedule are O(1) and
// allocation-free in steady state; the service layer's re-arm-per-
// heartbeat pattern is a lazy deadline rewrite that resolves when the
// record's slot is cascaded. Storage is O(peak live timers) via the
// slab's free list.
//
// Threading (see docs/runtime.md "Threading model"): the loop itself is
// shard-confined — every method must be called from the thread that runs
// run_until, EXCEPT wake() and stop(), which are async-signal-ish entry
// points other threads use to interrupt the poll. Cross-thread work is
// marshalled by pushing a command somewhere the wake handler can see it
// (shard::ShardedMonitorService pairs the wakeup with a lock-free
// MpscQueue) and then calling wake().
#pragma once

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/runtime.hpp"
#include "common/time.hpp"
#include "net/timer_wheel.hpp"
#include "net/udp_socket.hpp"

namespace twfd::net {

/// Interest/readiness bits for EventLoop::watch_fd. POLLHUP/POLLERR/
/// POLLNVAL are always delivered as kFdRead so the handler's read path
/// observes the EOF/error and can clean up.
inline constexpr unsigned kFdRead = 1u;
inline constexpr unsigned kFdWrite = 2u;

class EventLoop final : public Clock, public Transport, public TimerService {
 public:
  /// Loop observability counters (cumulative since construction).
  struct Stats {
    TimerStats timers;
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    /// Datagrams handed to this loop by another shard (inject_datagram).
    std::uint64_t datagrams_injected = 0;
    /// Send attempts the socket reported as soft failures (EAGAIN etc).
    std::uint64_t send_soft_failures = 0;
    /// Hard receive errors surfaced by the socket (EBADF etc) — distinct
    /// from "no datagram queued", which is not an error.
    std::uint64_t recv_errors = 0;
    /// Non-empty receive_batch() calls. datagrams_received / rx_batches
    /// is the mean batch size; min/max bound the distribution.
    std::uint64_t rx_batches = 0;
    std::uint64_t rx_batch_min = 0;  ///< smallest non-empty batch (0 = none yet)
    std::uint64_t rx_batch_max = 0;  ///< largest batch in one syscall
    /// Arrival-timestamp source split: kernel SO_TIMESTAMPNS stamps vs.
    /// the per-batch clock-read fallback.
    std::uint64_t rx_kernel_stamps = 0;
    std::uint64_t rx_clock_stamps = 0;
    /// Datagrams longer than the socket's receive slot, delivered cut.
    std::uint64_t rx_truncated = 0;
    /// poll() returns split by what woke the loop: socket readable,
    /// a timer deadline reached, a cross-thread wake(), or none of those
    /// (the 50 ms responsiveness cap and interrupted waits land here).
    std::uint64_t wakeups_io = 0;
    std::uint64_t wakeups_timer = 0;
    std::uint64_t wakeups_cross = 0;
    std::uint64_t wakeups_spurious = 0;
    /// Readiness callbacks delivered to watched fds (watch_fd).
    std::uint64_t fd_dispatches = 0;

    /// Element-wise sum (shard aggregation).
    Stats& operator+=(const Stats& o);
  };

  /// Binds the loop's socket on `port` (0 = ephemeral).
  explicit EventLoop(std::uint16_t port = 0);
  /// Binds with explicit socket options (SO_REUSEPORT / SO_RCVBUF — the
  /// sharded receive path).
  explicit EventLoop(const UdpSocket::Options& options);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Clock (monotonic).
  [[nodiscard]] Tick now() const override;

  // Transport.
  void send(PeerId to, std::span<const std::byte> data) override;
  /// One sendmmsg per kBatchMax targets instead of one sendto each.
  void send_many(std::span<const PeerId> to,
                 std::span<const std::byte> data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  // TimerService.
  TimerId schedule_at(Tick when, std::function<void()> fn) override;
  void cancel(TimerId id) override;
  bool reschedule(TimerId id, Tick when) override;

  /// Deadline of the earliest pending timer (kTickInfinity when none).
  /// Exact even under lazy push-out reschedules — postponed records are
  /// migrated during the scan, so run_until never wakes early for a
  /// deadline that no longer means anything. Mutates wheel placement but
  /// not observable timer state.
  [[nodiscard]] Tick next_timer_at();

  /// Registers a peer address; idempotent (same address -> same id).
  PeerId add_peer(const SocketAddress& addr);
  /// The address behind a PeerId (loop-thread only; id must be known).
  [[nodiscard]] const SocketAddress& peer_address(PeerId id) const;
  [[nodiscard]] std::uint16_t local_port() const { return socket_.local_port(); }
  [[nodiscard]] Runtime runtime() noexcept { return {this, this, this}; }

  // --- External fd watches (the TCP control plane; loop-thread only) ---

  /// Readiness bits (kFdRead/kFdWrite) actually pending on the fd.
  using FdHandler = std::function<void(unsigned events)>;

  /// Polls `fd` for `interest` (kFdRead|kFdWrite; 0 parks the watch) and
  /// invokes `handler` with the ready bits each loop turn. One watch per
  /// fd; re-watching an fd replaces the previous watch. The handler may
  /// watch/unwatch any fd, including its own.
  void watch_fd(int fd, unsigned interest, FdHandler handler);
  /// Changes the interest set of an existing watch (no-op when unknown).
  void update_fd(int fd, unsigned interest);
  /// Drops the watch; after return the handler will not be called again.
  void unwatch_fd(int fd);
  [[nodiscard]] std::size_t watched_fd_count() const noexcept {
    return watches_.size();
  }

  /// Feeds a datagram into the receive path as if it had arrived on this
  /// loop's socket (loop-thread only). This is the shard hand-off: a
  /// sibling shard that received a datagram for a peer this loop owns
  /// marshals the bytes over and injects them here, so detector state is
  /// only ever touched by its owning shard. `arrival` is the stamp the
  /// receiving shard observed (shared monotonic domain); the two-argument
  /// form stamps with now().
  void inject_datagram(const SocketAddress& from, std::span<const std::byte> data,
                       Tick arrival);
  void inject_datagram(const SocketAddress& from,
                       std::span<const std::byte> data) {
    inject_datagram(from, data, now());
  }

  /// Runs timers and socket I/O until `deadline` (Clock domain).
  void run_until(Tick deadline);
  /// Convenience: run for a duration from now.
  void run_for(Tick duration) { run_until(now() + duration); }

  // --- Cross-thread entry points (the ONLY thread-safe methods) ---

  /// Makes a concurrent run_until return promptly. Callable from handlers
  /// on the loop thread and from other threads (pairs with wake()).
  void stop() {
    stopped_.store(true, std::memory_order_release);
    wake();
  }

  /// Interrupts a concurrent poll; the loop then runs the wake handler.
  /// Lock-free (one eventfd/pipe write); callable from any thread.
  void wake() noexcept;

  /// Installs the callback run on the loop thread after every wake()
  /// (shards drain their command queue here). Loop-thread only.
  void set_wake_handler(std::function<void()> handler) {
    on_wake_ = std::move(handler);
  }

  /// Installs a callback run once after each non-empty receive batch has
  /// been fully delivered to the receive handler. The sharded runtime
  /// flushes its per-batch hand-off staging here — one bulk enqueue and
  /// at most one wake per destination shard per batch instead of per
  /// datagram. Loop-thread only.
  void set_batch_end_handler(std::function<void()> handler) {
    on_batch_end_ = std::move(handler);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept {
    return stats_.datagrams_sent;
  }
  [[nodiscard]] std::uint64_t datagrams_received() const noexcept {
    return stats_.datagrams_received;
  }

  /// Pending (schedulable) timers — the O(live) quantity.
  [[nodiscard]] std::size_t live_timer_count() const noexcept {
    return wheel_.size();
  }
  /// Timer-record slab slots ever handed out; flat under cancel/re-arm
  /// churn (free-list reuse), so it bounds timer storage at O(peak live).
  [[nodiscard]] std::size_t timer_storage_slots() const noexcept {
    return wheel_.storage_slots();
  }

 private:
  void open_wake_fd();
  void drain_wake_fd() noexcept;
  void drain_socket();
  void fire_due_timers();
  [[nodiscard]] bool is_stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  UdpSocket socket_;
  SteadyClock clock_;
  ReceiveHandler on_receive_;
  std::function<void()> on_wake_;
  std::function<void()> on_batch_end_;
  /// Monotonicity floor for socket arrival stamps: kernel stamps from
  /// different batches are clamped so arrivals never run backwards.
  Tick last_arrival_ = 0;
  /// Per-call scratch for send_many (member to avoid reallocation).
  std::vector<SocketAddress> send_addrs_;

  // Cross-thread wakeup: eventfd on Linux, self-pipe elsewhere. wake_fd_
  // is the readable end polled by run_until; wake_write_fd_ the end other
  // threads write to (same fd for eventfd).
  int wake_fd_ = -1;
  int wake_write_fd_ = -1;

  std::map<SocketAddress, PeerId> peer_ids_;
  std::vector<SocketAddress> peer_addrs_;  // index = PeerId - 1

  // External fd watches. The generation stamp guards dispatch against a
  // watch being dropped and a new one registered on the same fd number
  // by an earlier handler in the same poll round.
  struct FdWatch {
    unsigned interest = 0;
    std::uint64_t generation = 0;
    FdHandler handler;
  };
  std::map<int, FdWatch> watches_;
  std::uint64_t watch_generation_ = 0;
  // Per-turn poll scratch (member to avoid reallocation each turn).
  std::vector<pollfd> pfds_;
  std::vector<std::pair<int, std::uint64_t>> poll_snapshot_;

  std::atomic<bool> stopped_{false};

  Stats stats_;
  // Declared after stats_: the wheel holds &stats_.timers.
  TimerWheel wheel_;
};

}  // namespace twfd::net

// Single-threaded poll-based event loop implementing the Runtime
// interfaces (Clock / Transport / TimerService) over one UDP socket.
//
// Peers are registered (or auto-learned from inbound datagrams) and
// addressed by PeerId, mirroring the simulator's addressing so service
// code is identical in both worlds.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/runtime.hpp"
#include "common/time.hpp"
#include "net/udp_socket.hpp"

namespace twfd::net {

class EventLoop final : public Clock, public Transport, public TimerService {
 public:
  /// Binds the loop's socket on `port` (0 = ephemeral).
  explicit EventLoop(std::uint16_t port = 0);

  // Clock (monotonic).
  [[nodiscard]] Tick now() const override;

  // Transport.
  void send(PeerId to, std::span<const std::byte> data) override;
  void set_receive_handler(ReceiveHandler handler) override;

  // TimerService.
  TimerId schedule_at(Tick when, std::function<void()> fn) override;
  void cancel(TimerId id) override;

  /// Registers a peer address; idempotent (same address -> same id).
  PeerId add_peer(const SocketAddress& addr);
  [[nodiscard]] std::uint16_t local_port() const { return socket_.local_port(); }
  [[nodiscard]] Runtime runtime() noexcept { return {this, this, this}; }

  /// Runs timers and socket I/O until `deadline` (Clock domain).
  void run_until(Tick deadline);
  /// Convenience: run for a duration from now.
  void run_for(Tick duration) { run_until(now() + duration); }
  /// Makes a concurrent run_until return promptly (callable from handlers).
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const noexcept { return received_; }

 private:
  struct PendingTimer {
    Tick at;
    std::uint64_t order;
    TimerId id;
  };
  struct TimerCmp {
    bool operator()(const PendingTimer& a, const PendingTimer& b) const {
      return a.at != b.at ? a.at > b.at : a.order > b.order;
    }
  };

  void drain_socket();
  void fire_due_timers();
  [[nodiscard]] Tick next_timer_at() const;

  UdpSocket socket_;
  SteadyClock clock_;
  ReceiveHandler on_receive_;

  std::map<SocketAddress, PeerId> peer_ids_;
  std::vector<SocketAddress> peer_addrs_;  // index = PeerId - 1

  std::priority_queue<PendingTimer, std::vector<PendingTimer>, TimerCmp> timers_;
  std::map<TimerId, std::function<void()>> timer_fns_;  // erased = cancelled
  TimerId next_timer_id_ = 1;
  std::uint64_t order_counter_ = 0;
  bool stopped_ = false;

  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

}  // namespace twfd::net

// RAII wrapper over a non-blocking IPv4 UDP socket.
//
// Two receive paths share the fd:
//   receive()        one datagram per syscall, for simple callers. The
//                    returned view reuses a member buffer, so the steady
//                    state allocates nothing.
//   receive_batch()  up to kBatchMax datagrams per syscall (recvmmsg on
//                    Linux, a portable recvmsg loop elsewhere or when the
//                    build defines TWFD_NO_RECVMMSG), read into a
//                    persistent per-socket buffer pool and returned as
//                    spans — the event-loop hot path. When the kernel
//                    supports SO_TIMESTAMPNS each datagram also carries
//                    its kernel RX timestamp, so arrival times are immune
//                    to userland scheduling jitter.
// send_batch() is the TX mirror: one payload fanned out to many
// destinations in sendmmsg chunks (heartbeat broadcast).
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace twfd::net {

/// IPv4 address + port, comparable so it can key peer registries.
struct SocketAddress {
  std::uint32_t ip_host_order = 0;  // e.g. 127.0.0.1 = 0x7f000001
  std::uint16_t port = 0;

  friend auto operator<=>(const SocketAddress&, const SocketAddress&) = default;

  [[nodiscard]] std::string to_string() const;
  /// Parses dotted-quad notation; throws std::invalid_argument on failure.
  [[nodiscard]] static SocketAddress parse(const std::string& ip, std::uint16_t port);
  [[nodiscard]] static SocketAddress loopback(std::uint16_t port);

  [[nodiscard]] sockaddr_in to_sockaddr() const;
  [[nodiscard]] static SocketAddress from_sockaddr(const sockaddr_in& sa);
};

class UdpSocket {
 public:
  /// Most datagrams one receive_batch()/send_batch() call moves through
  /// the kernel in a single syscall.
  static constexpr std::size_t kBatchMax = 64;
  /// Bytes per receive-pool slot; longer datagrams are truncated to this
  /// and flagged. Heartbeat/control datagrams are well under 100 bytes.
  static constexpr std::size_t kRecvSlotBytes = 2048;
  /// True when this build selected the recvmmsg/sendmmsg implementation
  /// (Linux without TWFD_NO_RECVMMSG). The portable per-datagram loop is
  /// always compiled and can be forced per socket via Options.
#if defined(__linux__) && !defined(TWFD_NO_RECVMMSG)
  static constexpr bool kBatchSyscalls = true;
#else
  static constexpr bool kBatchSyscalls = false;
#endif

  /// Bind-time options for the sharded receive path.
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral
    /// SO_REUSEPORT: several sockets (one per shard worker) bind the same
    /// port and the kernel spreads inbound flows across them.
    bool reuse_port = false;
    /// SO_RCVBUF request in bytes (0 = kernel default). Sharded monitors
    /// absorb heartbeat bursts from thousands of peers; a deeper receive
    /// buffer rides out scheduling hiccups.
    int rcvbuf_bytes = 0;
    /// Forces the portable per-datagram batch implementation (and the
    /// kernel-timestamp-free ladder) even where recvmmsg is compiled in.
    /// Tests and A/B benches use this to pin identical observable
    /// behaviour across both implementations.
    bool portable_batch_io = false;
  };

  /// Opens and binds a non-blocking UDP socket on 0.0.0.0:`port`
  /// (port 0 = ephemeral). Throws std::system_error on failure.
  explicit UdpSocket(std::uint16_t port = 0) : UdpSocket(Options{.port = port}) {}
  explicit UdpSocket(const Options& options);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The locally bound port (resolved after ephemeral bind).
  [[nodiscard]] std::uint16_t local_port() const;

  /// Sends a datagram; best-effort (heartbeats are loss-tolerant by
  /// design), but soft failures — EAGAIN/ENOBUFS (socket buffer full) and
  /// ECONNREFUSED (peer gone) — are counted instead of silently ignored,
  /// and EINTR is retried.
  void send_to(const SocketAddress& to, std::span<const std::byte> data);

  /// Fans one payload out to every destination in `to`, batching
  /// kBatchMax datagrams per sendmmsg syscall (portable fallback: a
  /// sendto loop). Soft failures are counted per datagram exactly like
  /// send_to. Returns the number of datagrams handed to the kernel.
  std::size_t send_batch(std::span<const SocketAddress> to,
                         std::span<const std::byte> payload);

  struct Datagram {
    SocketAddress from;
    std::vector<std::byte> data;
  };

  /// Non-blocking receive; nullptr when no datagram is queued. Retries
  /// EINTR. The returned datagram reuses a member buffer — it is valid
  /// until the next receive() call and never allocates in steady state.
  [[nodiscard]] const Datagram* receive();

  /// One received datagram inside a batch. `data` views the socket's
  /// internal buffer pool and is invalidated by the next receive_batch()
  /// call on this socket.
  struct RecvBatchItem {
    SocketAddress from;
    std::span<const std::byte> data;
    /// Kernel RX timestamp (CLOCK_REALTIME nanoseconds since the epoch)
    /// from SO_TIMESTAMPNS; 0 when the platform/path provides none. The
    /// event loop maps it into the monotonic tick domain.
    std::int64_t kernel_time_ns = 0;
    /// The datagram exceeded kRecvSlotBytes and was truncated to it.
    bool truncated = false;
  };

  /// Receives up to kBatchMax queued datagrams in one syscall (recvmmsg)
  /// or via the portable per-datagram loop. Returns an empty span when
  /// nothing is queued. The items (and their data spans) live in socket
  /// storage reused by the next receive_batch() call.
  [[nodiscard]] std::span<const RecvBatchItem> receive_batch();

  /// Send attempts that failed softly (EAGAIN/EWOULDBLOCK/ENOBUFS/
  /// ECONNREFUSED/EPERM) since construction. Not thread-safe: read from
  /// the thread that sends.
  [[nodiscard]] std::uint64_t soft_send_failures() const noexcept {
    return soft_send_failures_;
  }

  /// Hard receive errors (anything other than "no datagram queued", e.g.
  /// EBADF/ENOTCONN) observed by receive()/receive_batch(). Persistent
  /// socket breakage is visible here instead of masquerading as an idle
  /// socket. Not thread-safe: read from the receiving thread.
  [[nodiscard]] std::uint64_t recv_errors() const noexcept { return recv_errors_; }

  /// Whether this socket delivers kernel RX timestamps in batch items.
  [[nodiscard]] bool kernel_timestamps() const noexcept {
    return timestamps_enabled_;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  struct BatchPool;  // persistent recvmmsg/sendmmsg scratch, lazily built

  void close_fd() noexcept;
  [[nodiscard]] BatchPool& pool();
  std::span<const RecvBatchItem> receive_batch_portable(BatchPool& p);
  std::size_t send_batch_portable(std::span<const SocketAddress> to,
                                  std::span<const std::byte> payload);

  int fd_ = -1;
  std::uint64_t soft_send_failures_ = 0;
  std::uint64_t recv_errors_ = 0;
  bool portable_batch_ = false;
  bool timestamps_enabled_ = false;
  Datagram rx_scratch_;
  std::unique_ptr<BatchPool> pool_;
};

}  // namespace twfd::net

// RAII wrapper over a non-blocking IPv4 UDP socket.
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace twfd::net {

/// IPv4 address + port, comparable so it can key peer registries.
struct SocketAddress {
  std::uint32_t ip_host_order = 0;  // e.g. 127.0.0.1 = 0x7f000001
  std::uint16_t port = 0;

  friend auto operator<=>(const SocketAddress&, const SocketAddress&) = default;

  [[nodiscard]] std::string to_string() const;
  /// Parses dotted-quad notation; throws std::invalid_argument on failure.
  [[nodiscard]] static SocketAddress parse(const std::string& ip, std::uint16_t port);
  [[nodiscard]] static SocketAddress loopback(std::uint16_t port);

  [[nodiscard]] sockaddr_in to_sockaddr() const;
  [[nodiscard]] static SocketAddress from_sockaddr(const sockaddr_in& sa);
};

class UdpSocket {
 public:
  /// Opens and binds a non-blocking UDP socket on 0.0.0.0:`port`
  /// (port 0 = ephemeral). Throws std::system_error on failure.
  explicit UdpSocket(std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The locally bound port (resolved after ephemeral bind).
  [[nodiscard]] std::uint16_t local_port() const;

  /// Sends a datagram; best-effort (EAGAIN and friends are swallowed —
  /// heartbeats are loss-tolerant by design).
  void send_to(const SocketAddress& to, std::span<const std::byte> data);

  struct Datagram {
    SocketAddress from;
    std::vector<std::byte> data;
  };

  /// Non-blocking receive; std::nullopt when no datagram is queued.
  [[nodiscard]] std::optional<Datagram> receive();

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  void close_fd() noexcept;
  int fd_ = -1;
};

}  // namespace twfd::net

// RAII wrapper over a non-blocking IPv4 UDP socket.
#pragma once

#include <netinet/in.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace twfd::net {

/// IPv4 address + port, comparable so it can key peer registries.
struct SocketAddress {
  std::uint32_t ip_host_order = 0;  // e.g. 127.0.0.1 = 0x7f000001
  std::uint16_t port = 0;

  friend auto operator<=>(const SocketAddress&, const SocketAddress&) = default;

  [[nodiscard]] std::string to_string() const;
  /// Parses dotted-quad notation; throws std::invalid_argument on failure.
  [[nodiscard]] static SocketAddress parse(const std::string& ip, std::uint16_t port);
  [[nodiscard]] static SocketAddress loopback(std::uint16_t port);

  [[nodiscard]] sockaddr_in to_sockaddr() const;
  [[nodiscard]] static SocketAddress from_sockaddr(const sockaddr_in& sa);
};

class UdpSocket {
 public:
  /// Bind-time options for the sharded receive path.
  struct Options {
    std::uint16_t port = 0;  ///< 0 = ephemeral
    /// SO_REUSEPORT: several sockets (one per shard worker) bind the same
    /// port and the kernel spreads inbound flows across them.
    bool reuse_port = false;
    /// SO_RCVBUF request in bytes (0 = kernel default). Sharded monitors
    /// absorb heartbeat bursts from thousands of peers; a deeper receive
    /// buffer rides out scheduling hiccups.
    int rcvbuf_bytes = 0;
  };

  /// Opens and binds a non-blocking UDP socket on 0.0.0.0:`port`
  /// (port 0 = ephemeral). Throws std::system_error on failure.
  explicit UdpSocket(std::uint16_t port = 0) : UdpSocket(Options{port}) {}
  explicit UdpSocket(const Options& options);
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// The locally bound port (resolved after ephemeral bind).
  [[nodiscard]] std::uint16_t local_port() const;

  /// Sends a datagram; best-effort (heartbeats are loss-tolerant by
  /// design), but soft failures — EAGAIN/ENOBUFS (socket buffer full) and
  /// ECONNREFUSED (peer gone) — are counted instead of silently ignored,
  /// and EINTR is retried.
  void send_to(const SocketAddress& to, std::span<const std::byte> data);

  struct Datagram {
    SocketAddress from;
    std::vector<std::byte> data;
  };

  /// Non-blocking receive; std::nullopt when no datagram is queued.
  /// Retries EINTR.
  [[nodiscard]] std::optional<Datagram> receive();

  /// Send attempts that failed softly (EAGAIN/EWOULDBLOCK/ENOBUFS/
  /// ECONNREFUSED/EPERM) since construction. Not thread-safe: read from
  /// the thread that sends.
  [[nodiscard]] std::uint64_t soft_send_failures() const noexcept {
    return soft_send_failures_;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  void close_fd() noexcept;
  int fd_ = -1;
  std::uint64_t soft_send_failures_ = 0;
};

}  // namespace twfd::net

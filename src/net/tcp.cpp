#include "net/tcp.hpp"

#include <fcntl.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace twfd::net {
namespace {

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, ::fcntl(fd, F_GETFD) | FD_CLOEXEC);
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

TcpListener::TcpListener(const Options& options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket(TCP)");
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  set_nonblocking(fd_);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options.port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close_fd();
    throw std::system_error(err, std::generic_category(), "bind(TCP)");
  }
  if (::listen(fd_, options.backlog) != 0) {
    const int err = errno;
    close_fd();
    throw std::system_error(err, std::generic_category(), "listen()");
  }
}

TcpListener::~TcpListener() { close_fd(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      resource_failures_(other.resource_failures_),
      aborted_accepts_(other.aborted_accepts_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    resource_failures_ = other.resource_failures_;
    aborted_accepts_ = other.aborted_accepts_;
  }
  return *this;
}

void TcpListener::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint16_t TcpListener::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw std::system_error(errno, std::generic_category(), "getsockname()");
  }
  return ntohs(addr.sin_port);
}

std::optional<TcpListener::Accepted> TcpListener::accept() {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    const int cfd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (cfd >= 0) {
      set_nonblocking(cfd);
      set_nodelay(cfd);
      return Accepted{cfd, SocketAddress::from_sockaddr(addr)};
    }
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) return std::nullopt;
    if (err == ECONNABORTED || err == EPROTO) {
      ++aborted_accepts_;
      continue;  // the next backlog entry may be healthy
    }
    // EMFILE/ENFILE/... and anything unexpected: count and report empty;
    // the listener fd stays valid, the caller backs off.
    ++resource_failures_;
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// TcpConn
// ---------------------------------------------------------------------------

TcpConn::TcpConn(int fd) : fd_(fd) {
  set_nonblocking(fd_);
  set_nodelay(fd_);
}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), soft_errors_(other.soft_errors_) {}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    soft_errors_ = other.soft_errors_;
  }
  return *this;
}

void TcpConn::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<TcpConn> TcpConn::connect(const SocketAddress& to, Tick timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  set_nonblocking(fd);

  const sockaddr_in addr = to.to_sockaddr();
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return std::nullopt;
  }
  if (rc != 0) {
    // Handshake in flight: wait for writability, then read the verdict.
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms =
        static_cast<int>((timeout + ticks_from_ms(1) - 1) / ticks_from_ms(1));
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    int err = 0;
    socklen_t len = sizeof err;
    if (rc <= 0 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return std::nullopt;
    }
  }
  return TcpConn(fd);
}

TcpConn::IoResult TcpConn::read_some(std::span<std::byte> buf) {
  if (fd_ < 0) return {IoStatus::kClosed, 0};
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};  // orderly EOF
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    ++soft_errors_;  // ECONNRESET, ETIMEDOUT, ...
    return {IoStatus::kClosed, 0};
  }
}

TcpConn::IoResult TcpConn::write_some(std::span<const std::byte> buf) {
  if (fd_ < 0) return {IoStatus::kClosed, 0};
  if (buf.empty()) return {IoStatus::kOk, 0};
  for (;;) {
    const ssize_t n = ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    const int err = errno;
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    ++soft_errors_;  // EPIPE, ECONNRESET, ...
    return {IoStatus::kClosed, 0};
  }
}

void TcpConn::set_send_buffer(int bytes) noexcept {
  if (fd_ >= 0 && bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  }
}

void TcpConn::set_recv_buffer(int bytes) noexcept {
  if (fd_ >= 0 && bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof bytes);
  }
}

}  // namespace twfd::net

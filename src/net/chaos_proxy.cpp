#include "net/chaos_proxy.hpp"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace twfd::net {

ChaosTcpProxy::ChaosTcpProxy(Options options)
    : options_(std::move(options)),
      listener_({options_.listen_port}),
      engine_(options_.plan) {}

ChaosTcpProxy::~ChaosTcpProxy() { stop(); }

void ChaosTcpProxy::start() {
  TWFD_CHECK_MSG(!running_, "proxy already started");
  stop_requested_.store(false, std::memory_order_release);
  running_ = true;
  thread_ = std::thread([this] { pump_main(); });
}

void ChaosTcpProxy::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_ = false;
  links_.clear();
}

void ChaosTcpProxy::force_reset() {
  force_resets_requested_.fetch_add(1, std::memory_order_acq_rel);
}

ChaosTcpProxy::Stats ChaosTcpProxy::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

bool ChaosTcpProxy::link_dead(const Link& link) const {
  // A side is finished when its source hit EOF and everything read from
  // it has been forwarded. Half-open forwarding is not worth modelling
  // for a chaos tool: either direction ending ends the link.
  const bool up_done =
      !link.client.valid() || (link.up.src_closed && link.up.pos >= link.up.buf.size());
  const bool down_done = !link.upstream.valid() ||
                         (link.down.src_closed && link.down.pos >= link.down.buf.size());
  return up_done || down_done;
}

void ChaosTcpProxy::accept_new() {
  while (links_.size() < options_.max_links) {
    auto accepted = listener_.accept();
    if (!accepted) break;
    auto upstream = TcpConn::connect(options_.upstream, ticks_from_sec(2));
    if (!upstream) {
      TcpConn(accepted->fd).close();
      continue;
    }
    auto link = std::make_unique<Link>();
    link->client = TcpConn(accepted->fd);
    link->upstream = std::move(*upstream);
    links_.push_back(std::move(link));
    std::lock_guard lk(stats_mu_);
    ++stats_.links_opened;
  }
}

std::size_t ChaosTcpProxy::pump_pipe(Pipe& pipe, TcpConn& src, TcpConn& dst) {
  // Refill from the source while the buffer stays under the cap.
  std::byte scratch[4096];
  while (!pipe.src_closed && pipe.buf.size() - pipe.pos < options_.max_buffered) {
    const auto r = src.read_some(scratch);
    if (r.status == TcpConn::IoStatus::kOk) {
      pipe.buf.insert(pipe.buf.end(), scratch, scratch + r.bytes);
      continue;
    }
    if (r.status == TcpConn::IoStatus::kClosed) pipe.src_closed = true;
    break;
  }

  // Forward, honouring the trickle cap per turn.
  std::size_t pending = pipe.buf.size() - pipe.pos;
  if (options_.plan.tcp_trickle_bytes > 0) {
    pending = std::min(pending, options_.plan.tcp_trickle_bytes);
  }
  std::size_t forwarded = 0;
  while (forwarded < pending) {
    const auto w = dst.write_some(std::span<const std::byte>(
        pipe.buf.data() + pipe.pos, pending - forwarded));
    if (w.status != TcpConn::IoStatus::kOk) break;
    pipe.pos += w.bytes;
    forwarded += w.bytes;
  }
  if (pipe.pos >= pipe.buf.size()) {
    pipe.buf.clear();
    pipe.pos = 0;
  } else if (pipe.pos > 8192) {
    pipe.buf.erase(pipe.buf.begin(),
                   pipe.buf.begin() + static_cast<std::ptrdiff_t>(pipe.pos));
    pipe.pos = 0;
  }
  return forwarded;
}

void ChaosTcpProxy::pump_main() {
  const int timeout_ms = std::max<int>(
      1, static_cast<int>(options_.pump_interval / ticks_from_ms(1)));
  while (!stop_requested_.load(std::memory_order_acquire)) {
    accept_new();

    // One pending force_reset kills every active link; the request is
    // held until at least one link exists so a test's kill cannot be
    // silently absorbed between connections.
    const std::uint64_t wanted =
        force_resets_requested_.load(std::memory_order_acquire);
    if (wanted > force_resets_done_ && !links_.empty()) {
      for (auto& link : links_) {
        link->client.close();
        link->upstream.close();
      }
      const std::uint64_t kills = wanted - force_resets_done_;
      force_resets_done_ = wanted;
      links_.clear();
      std::lock_guard lk(stats_mu_);
      stats_.forced_resets += kills;
    }

    const Tick now = clock_.now();
    std::uint64_t up = 0, down = 0, resets = 0, stalls = 0;
    for (auto& link : links_) {
      if (link->stall_until > now) continue;
      const std::size_t moved_up =
          pump_pipe(link->up, link->client, link->upstream);
      const std::size_t moved_down =
          pump_pipe(link->down, link->upstream, link->client);
      up += moved_up;
      down += moved_down;
      if (moved_up + moved_down == 0) continue;
      // A chunk crossed the proxy: consult the plan.
      const FaultEngine::TcpDecision d = engine_.next_chunk();
      if (d.reset) {
        link->client.close();
        link->upstream.close();
        ++resets;
        continue;
      }
      if (d.stall && options_.plan.tcp_stall_for > 0) {
        link->stall_until = now + options_.plan.tcp_stall_for;
        ++stalls;
      }
    }
    std::erase_if(links_,
                  [this](const std::unique_ptr<Link>& l) { return link_dead(*l); });

    {
      std::lock_guard lk(stats_mu_);
      stats_.bytes_up += up;
      stats_.bytes_down += down;
      stats_.resets_injected += resets;
      stats_.stalls += stalls;
      stats_.links_active = links_.size();
    }

    // Sleep on readiness of every fd (or the pump interval, whichever
    // first); IO above is non-blocking, so readiness is an optimisation,
    // not a correctness requirement.
    std::vector<pollfd> pfds;
    pfds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& link : links_) {
      pfds.push_back({link->client.fd(), POLLIN, 0});
      pfds.push_back({link->upstream.fd(), POLLIN, 0});
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  }
  for (auto& link : links_) {
    link->client.close();
    link->upstream.close();
  }
  links_.clear();
  std::lock_guard lk(stats_mu_);
  stats_.links_active = 0;
}

}  // namespace twfd::net

#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace twfd::net {

std::string SocketAddress::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (ip_host_order >> 24) & 0xff,
                (ip_host_order >> 16) & 0xff, (ip_host_order >> 8) & 0xff,
                ip_host_order & 0xff, port);
  return buf;
}

SocketAddress SocketAddress::parse(const std::string& ip, std::uint16_t port) {
  in_addr addr{};
  if (inet_pton(AF_INET, ip.c_str(), &addr) != 1) {
    throw std::invalid_argument("bad IPv4 address: " + ip);
  }
  return {ntohl(addr.s_addr), port};
}

SocketAddress SocketAddress::loopback(std::uint16_t port) {
  return {0x7f000001u, port};
}

sockaddr_in SocketAddress::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

SocketAddress SocketAddress::from_sockaddr(const sockaddr_in& sa) {
  return {ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

UdpSocket::UdpSocket(const Options& options) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket()");
  }
  if (options.reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int err = errno;
      close_fd();
      throw std::system_error(err, std::generic_category(), "SO_REUSEPORT");
    }
  }
  if (options.rcvbuf_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max; a smaller buffer is a
    // performance matter, not a correctness one.
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
                       sizeof options.rcvbuf_bytes);
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  sa.sin_port = htons(options.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    const int err = errno;
    close_fd();
    throw std::system_error(err, std::generic_category(), "bind()");
  }
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      soft_send_failures_(std::exchange(other.soft_send_failures_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    soft_send_failures_ = std::exchange(other.soft_send_failures_, 0);
  }
  return *this;
}

void UdpSocket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw std::system_error(errno, std::generic_category(), "getsockname()");
  }
  return ntohs(sa.sin_port);
}

void UdpSocket::send_to(const SocketAddress& to, std::span<const std::byte> data) {
  const sockaddr_in sa = to.to_sockaddr();
  ssize_t n;
  do {
    n = ::sendto(fd_, data.data(), data.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  } while (n < 0 && errno == EINTR);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS ||
                errno == ECONNREFUSED || errno == EPERM)) {
    ++soft_send_failures_;
  }
}

std::optional<UdpSocket::Datagram> UdpSocket::receive() {
  std::byte buf[2048];
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  ssize_t n;
  do {
    len = sizeof sa;
    n = ::recvfrom(fd_, buf, sizeof buf, 0, reinterpret_cast<sockaddr*>(&sa),
                   &len);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return std::nullopt;  // EAGAIN / transient errors: no datagram
  Datagram d;
  d.from = SocketAddress::from_sockaddr(sa);
  d.data.assign(buf, buf + n);
  return d;
}

}  // namespace twfd::net

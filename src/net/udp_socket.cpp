#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "common/assert.hpp"

// The batched syscall implementation. TWFD_NO_RECVMMSG pins the portable
// per-datagram loop at build time (tests compile the translation unit a
// second time with it set to prove both paths behave identically).
#if defined(__linux__) && !defined(TWFD_NO_RECVMMSG)
#define TWFD_HAVE_MMSG 1
#else
#define TWFD_HAVE_MMSG 0
#endif

namespace twfd::net {

std::string SocketAddress::to_string() const {
  // "255.255.255.255:65535" is 21 chars; 32 leaves headroom, and the
  // return value is checked so a future format change cannot silently
  // truncate addresses out of stats/log lines.
  char buf[32];
  const int n = std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u",
                              (ip_host_order >> 24) & 0xff, (ip_host_order >> 16) & 0xff,
                              (ip_host_order >> 8) & 0xff, ip_host_order & 0xff, port);
  TWFD_CHECK_MSG(n > 0 && static_cast<std::size_t>(n) < sizeof buf,
                 "SocketAddress::to_string truncated");
  return std::string(buf, static_cast<std::size_t>(n));
}

SocketAddress SocketAddress::parse(const std::string& ip, std::uint16_t port) {
  in_addr addr{};
  if (inet_pton(AF_INET, ip.c_str(), &addr) != 1) {
    throw std::invalid_argument("bad IPv4 address: " + ip);
  }
  return {ntohl(addr.s_addr), port};
}

SocketAddress SocketAddress::loopback(std::uint16_t port) {
  return {0x7f000001u, port};
}

sockaddr_in SocketAddress::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

SocketAddress SocketAddress::from_sockaddr(const sockaddr_in& sa) {
  return {ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

// ---------------------------------------------------------------------------
// Batch pool: every buffer the batched RX/TX paths touch, allocated once
// per socket on first use and reused for the socket's lifetime — the
// steady-state hot path performs zero heap allocations per datagram.
// ---------------------------------------------------------------------------

struct UdpSocket::BatchPool {
  // RX: one fixed slot per datagram, plus per-message headers.
  std::vector<std::byte> slots;  // kBatchMax * kRecvSlotBytes
  std::array<sockaddr_in, kBatchMax> addrs{};
  std::vector<RecvBatchItem> items;  // reused result storage
#if TWFD_HAVE_MMSG
  std::array<mmsghdr, kBatchMax> msgs{};
  std::array<iovec, kBatchMax> iovs{};
  // CMSG_SPACE(timespec) is 32 on LP64; 64 leaves room for alignment.
  std::array<std::array<char, 64>, kBatchMax> cmsg{};
  // TX scratch (shared payload, per-destination headers).
  std::array<mmsghdr, kBatchMax> tx_msgs{};
  std::array<iovec, kBatchMax> tx_iovs{};
  std::array<sockaddr_in, kBatchMax> tx_addrs{};
#endif

  BatchPool() {
    slots.resize(kBatchMax * kRecvSlotBytes);
    items.reserve(kBatchMax);
  }

  [[nodiscard]] std::byte* slot(std::size_t i) noexcept {
    return slots.data() + i * kRecvSlotBytes;
  }
};

UdpSocket::BatchPool& UdpSocket::pool() {
  if (!pool_) pool_ = std::make_unique<BatchPool>();
  return *pool_;
}

UdpSocket::UdpSocket(const Options& options) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket()");
  }
  if (options.reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const int err = errno;
      close_fd();
      throw std::system_error(err, std::generic_category(), "SO_REUSEPORT");
    }
  }
  if (options.rcvbuf_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max; a smaller buffer is a
    // performance matter, not a correctness one.
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options.rcvbuf_bytes,
                       sizeof options.rcvbuf_bytes);
  }
  portable_batch_ = options.portable_batch_io || !kBatchSyscalls;
#if TWFD_HAVE_MMSG && defined(SO_TIMESTAMPNS)
  if (!portable_batch_) {
    // Best-effort: without kernel stamps the event loop falls back to one
    // clock read per batch (the documented timestamp ladder).
    const int one = 1;
    timestamps_enabled_ =
        ::setsockopt(fd_, SOL_SOCKET, SO_TIMESTAMPNS, &one, sizeof one) == 0;
  }
#endif
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_ANY);
  sa.sin_port = htons(options.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    const int err = errno;
    close_fd();
    throw std::system_error(err, std::generic_category(), "bind()");
  }
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      soft_send_failures_(std::exchange(other.soft_send_failures_, 0)),
      recv_errors_(std::exchange(other.recv_errors_, 0)),
      portable_batch_(other.portable_batch_),
      timestamps_enabled_(std::exchange(other.timestamps_enabled_, false)),
      rx_scratch_(std::move(other.rx_scratch_)),
      pool_(std::move(other.pool_)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = std::exchange(other.fd_, -1);
    soft_send_failures_ = std::exchange(other.soft_send_failures_, 0);
    recv_errors_ = std::exchange(other.recv_errors_, 0);
    portable_batch_ = other.portable_batch_;
    timestamps_enabled_ = std::exchange(other.timestamps_enabled_, false);
    rx_scratch_ = std::move(other.rx_scratch_);
    pool_ = std::move(other.pool_);
  }
  return *this;
}

void UdpSocket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint16_t UdpSocket::local_port() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw std::system_error(errno, std::generic_category(), "getsockname()");
  }
  return ntohs(sa.sin_port);
}

namespace {

bool is_soft_send_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS ||
         err == ECONNREFUSED || err == EPERM;
}

}  // namespace

void UdpSocket::send_to(const SocketAddress& to, std::span<const std::byte> data) {
  const sockaddr_in sa = to.to_sockaddr();
  ssize_t n;
  do {
    n = ::sendto(fd_, data.data(), data.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  } while (n < 0 && errno == EINTR);
  if (n < 0 && is_soft_send_errno(errno)) {
    ++soft_send_failures_;
  }
}

std::size_t UdpSocket::send_batch_portable(std::span<const SocketAddress> to,
                                           std::span<const std::byte> payload) {
  std::size_t sent = 0;
  for (const SocketAddress& dst : to) {
    const sockaddr_in sa = dst.to_sockaddr();
    ssize_t n;
    do {
      n = ::sendto(fd_, payload.data(), payload.size(), 0,
                   reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    } while (n < 0 && errno == EINTR);
    if (n >= 0) {
      ++sent;
    } else if (is_soft_send_errno(errno)) {
      ++soft_send_failures_;
    }
  }
  return sent;
}

std::size_t UdpSocket::send_batch(std::span<const SocketAddress> to,
                                  std::span<const std::byte> payload) {
#if TWFD_HAVE_MMSG
  if (!portable_batch_) {
    BatchPool& p = pool();
    std::size_t sent = 0;
    std::size_t off = 0;
    while (off < to.size()) {
      const std::size_t chunk = std::min(kBatchMax, to.size() - off);
      for (std::size_t i = 0; i < chunk; ++i) {
        p.tx_addrs[i] = to[off + i].to_sockaddr();
        p.tx_iovs[i] = {const_cast<std::byte*>(payload.data()), payload.size()};
        msghdr& h = p.tx_msgs[i].msg_hdr;
        h = {};
        h.msg_name = &p.tx_addrs[i];
        h.msg_namelen = sizeof p.tx_addrs[i];
        h.msg_iov = &p.tx_iovs[i];
        h.msg_iovlen = 1;
        p.tx_msgs[i].msg_len = 0;
      }
      int n;
      do {
        n = ::sendmmsg(fd_, p.tx_msgs.data(), static_cast<unsigned>(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        // Nothing from this chunk went out; mirror send_to's per-datagram
        // soft accounting for the whole remainder and stop — a persistent
        // EAGAIN would fail every following chunk the same way.
        if (is_soft_send_errno(errno)) soft_send_failures_ += to.size() - off;
        break;
      }
      sent += static_cast<std::size_t>(n);
      off += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < chunk) {
        // Partial: datagram n failed; its errno surfaces on the next call.
        // Retry the remainder on the next loop turn.
        continue;
      }
    }
    return sent;
  }
#endif
  return send_batch_portable(to, payload);
}

const UdpSocket::Datagram* UdpSocket::receive() {
  std::byte buf[kRecvSlotBytes];
  sockaddr_in sa{};
  socklen_t len;
  ssize_t n;
  do {
    len = sizeof sa;
    n = ::recvfrom(fd_, buf, sizeof buf, 0, reinterpret_cast<sockaddr*>(&sa), &len);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // EAGAIN means "no datagram"; anything else is a hard socket error
    // (EBADF, ENOTCONN, ...) that must not masquerade as an idle socket.
    if (errno != EAGAIN && errno != EWOULDBLOCK) ++recv_errors_;
    return nullptr;
  }
  rx_scratch_.from = SocketAddress::from_sockaddr(sa);
  // assign() reuses the member vector's capacity: after the first call
  // this path never touches the allocator.
  rx_scratch_.data.assign(buf, buf + n);
  return &rx_scratch_;
}

std::span<const UdpSocket::RecvBatchItem> UdpSocket::receive_batch_portable(
    BatchPool& p) {
  for (std::size_t i = 0; i < kBatchMax; ++i) {
    iovec iov{p.slot(i), kRecvSlotBytes};
    msghdr h{};
    h.msg_name = &p.addrs[i];
    h.msg_namelen = sizeof p.addrs[i];
    h.msg_iov = &iov;
    h.msg_iovlen = 1;
    ssize_t n;
    do {
      n = ::recvmsg(fd_, &h, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) ++recv_errors_;
      break;
    }
    RecvBatchItem item;
    item.from = SocketAddress::from_sockaddr(p.addrs[i]);
    item.data = {p.slot(i), static_cast<std::size_t>(n)};
    item.truncated = (h.msg_flags & MSG_TRUNC) != 0;
    p.items.push_back(item);
  }
  return {p.items.data(), p.items.size()};
}

std::span<const UdpSocket::RecvBatchItem> UdpSocket::receive_batch() {
  BatchPool& p = pool();
  p.items.clear();
#if TWFD_HAVE_MMSG
  if (!portable_batch_) {
    for (std::size_t i = 0; i < kBatchMax; ++i) {
      p.iovs[i] = {p.slot(i), kRecvSlotBytes};
      msghdr& h = p.msgs[i].msg_hdr;
      h = {};
      h.msg_name = &p.addrs[i];
      h.msg_namelen = sizeof p.addrs[i];
      h.msg_iov = &p.iovs[i];
      h.msg_iovlen = 1;
      h.msg_control = p.cmsg[i].data();
      h.msg_controllen = p.cmsg[i].size();
      p.msgs[i].msg_len = 0;
    }
    int n;
    do {
      n = ::recvmmsg(fd_, p.msgs.data(), static_cast<unsigned>(kBatchMax),
                     MSG_DONTWAIT, nullptr);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) ++recv_errors_;
      return {};
    }
    for (int i = 0; i < n; ++i) {
      msghdr& h = p.msgs[i].msg_hdr;
      RecvBatchItem item;
      item.from = SocketAddress::from_sockaddr(p.addrs[i]);
      item.data = {p.slot(static_cast<std::size_t>(i)),
                   std::min<std::size_t>(p.msgs[i].msg_len, kRecvSlotBytes)};
      item.truncated = (h.msg_flags & MSG_TRUNC) != 0;
#ifdef SO_TIMESTAMPNS
      for (cmsghdr* c = CMSG_FIRSTHDR(&h); c != nullptr; c = CMSG_NXTHDR(&h, c)) {
        if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SCM_TIMESTAMPNS) {
          timespec ts;
          std::memcpy(&ts, CMSG_DATA(c), sizeof ts);
          item.kernel_time_ns =
              static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
        }
      }
#endif
      p.items.push_back(item);
    }
    return {p.items.data(), p.items.size()};
  }
#endif
  return receive_batch_portable(p);
}

}  // namespace twfd::net

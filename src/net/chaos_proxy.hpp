// Chaos TCP proxy: the stream half of a FaultPlan.
//
// Sits in front of a TCP server (the FDaaS API port) and forwards bytes
// both ways while injecting the plan's stream faults:
//   reset=P     after forwarding a chunk, abruptly close BOTH sides —
//               the client sees a mid-stream reset, exactly the failure
//               api::ReconnectingClient exists to survive;
//   stall=P:D   freeze the link (no bytes either way) for D;
//   trickle=N   forward at most N bytes per direction per pump turn —
//               a pathologically slow path that exercises partial-frame
//               reassembly and send-queue backpressure.
//
// Faults draw from one deterministic FaultEngine (seed logged at start),
// so a chaos run is reproducible from its plan string. force_reset()
// kills every active link on demand — tests use it to inject an exact
// number of resets at exact points in the protocol exchange.
//
// One proxy = one background thread; start()/stop() bracket it. Tests
// run client -> proxy -> server on loopback; twfd_fdaasd --chaos with
// TCP faults puts one in front of its own API port.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "net/fault.hpp"
#include "net/tcp.hpp"

namespace twfd::net {

class ChaosTcpProxy {
 public:
  struct Options {
    std::uint16_t listen_port = 0;  ///< 0 = ephemeral
    SocketAddress upstream;         ///< the real server
    FaultPlan plan;
    /// Pump cadence (poll timeout); bounds added latency per hop.
    Tick pump_interval = ticks_from_ms(2);
    std::size_t max_links = 64;
    /// Per-direction buffered-byte cap; reading pauses above it.
    std::size_t max_buffered = 256 * 1024;
  };

  struct Stats {
    std::uint64_t links_opened = 0;
    std::uint64_t links_active = 0;  ///< gauge
    std::uint64_t resets_injected = 0;  ///< plan-scheduled resets
    std::uint64_t forced_resets = 0;    ///< force_reset() kills
    std::uint64_t stalls = 0;
    std::uint64_t bytes_up = 0;    ///< client -> upstream
    std::uint64_t bytes_down = 0;  ///< upstream -> client
  };

  explicit ChaosTcpProxy(Options options);
  ~ChaosTcpProxy();

  ChaosTcpProxy(const ChaosTcpProxy&) = delete;
  ChaosTcpProxy& operator=(const ChaosTcpProxy&) = delete;

  /// Spawns the pump thread. The listen socket exists from construction.
  void start();
  /// Stops the pump and closes every link. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.local_port(); }

  /// Abruptly closes every active link (asynchronously, on the pump
  /// thread). Each call is honoured exactly once even if links are
  /// momentarily absent — the kill waits for the next active link.
  void force_reset();

  [[nodiscard]] Stats stats() const;

 private:
  struct Pipe {
    std::vector<std::byte> buf;  ///< bytes read but not yet forwarded
    std::size_t pos = 0;
    bool src_closed = false;
  };
  struct Link {
    TcpConn client;
    TcpConn upstream;
    Pipe up;    ///< client -> upstream
    Pipe down;  ///< upstream -> client
    Tick stall_until = 0;
  };

  void pump_main();
  void accept_new();
  /// Moves bytes one hop for one direction; returns bytes forwarded.
  std::size_t pump_pipe(Pipe& pipe, TcpConn& src, TcpConn& dst);
  [[nodiscard]] bool link_dead(const Link& link) const;

  Options options_;
  TcpListener listener_;
  FaultEngine engine_;
  SteadyClock clock_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> force_resets_requested_{0};
  bool running_ = false;

  // Pump-thread state; stats mirrored out under the mutex.
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t force_resets_done_ = 0;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace twfd::net

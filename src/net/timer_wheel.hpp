// Hierarchical timing wheel: the O(1) slab-backed timer core behind both
// runtimes' TimerService implementations (net::EventLoop and
// sim::SimWorld).
//
// Geometry: 6 levels x 1024 slots, 10 bits per level, 1 ns per level-0
// slot. Level l spans 2^(10*(l+1)) ns, so the wheel covers 2^60 ns
// (~36 years) ahead of `now`; anything beyond that — practically only
// kTickInfinity deadlines — parks on an overflow list. Slot indexing is
// absolute (Tokio-style): a deadline d lives at level
// `highest_set_bit(d XOR now) / 10`, slot `(d >> 10*level) & 1023`. Two
// invariants follow and are what the implementation leans on:
//
//   1. A record's placement is recomputable from (slot_at, now) alone —
//      advance never moves `now` past an occupied slot's base without
//      redistributing it first, so the level/slot a deadline hashed to at
//      insert time is the level/slot it still hashes to at unlink time.
//      Records therefore store no location, just the deadline they were
//      keyed under (`slot_at`).
//   2. Within a level, occupied slots are strictly ahead of now's own
//      index, and every slot of level l precedes every occupied slot of
//      level l+1 in time — so "earliest pending deadline" is a bitmap
//      scan from now's index upward at the lowest occupied level, with no
//      wraparound case.
//
// Records live in a twfd::Slab: a TimerId is (slot << 32) | generation
// with an odd (live) generation, so a stale cancel/reschedule after the
// slot was recycled can never alias the new tenant — it just misses.
// Schedule, cancel and reschedule are O(1) and allocation-free in steady
// state (the slab's free list recycles slots; callbacks are
// InlineFunction, no per-timer heap box for <=48-byte captures).
//
// The per-heartbeat re-arm — reschedule to a *later* deadline — is the
// hot path and takes a lazy push-out: only the record's `deadline` field
// is rewritten; the record stays in its slot and is migrated when the
// slot is processed (cascade) or scanned (next_deadline), mirroring the
// postponed-entry handling the old lazy-deletion heap did at the top of
// the heap. Equal-deadline timers fire in schedule FIFO order: slots are
// appended in insertion order, cascades preserve list order, and the due
// list is kept deadline-sorted with ties appended.
//
// Single-threaded by design — the owning loop's thread (or the sim) is
// the only caller, exactly like the rest of the runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/inline_function.hpp"
#include "common/runtime.hpp"
#include "common/slab.hpp"
#include "common/time.hpp"

namespace twfd::net {

class TimerWheel {
 public:
  static constexpr int kLevels = 6;
  static constexpr int kBitsPerLevel = 10;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kBitsPerLevel;
  /// Bits of horizon the levels cover; deadlines with a set bit at or
  /// above this (relative to now) park on the overflow list.
  static constexpr int kWheelBits = kLevels * kBitsPerLevel;

  /// `start` anchors the wheel's clock (the loop's now() at construction;
  /// 0 in the simulator). `stats` receives all lifecycle counters and
  /// gauges; must outlive the wheel.
  TimerWheel(Tick start, TimerStats* stats);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arms `fn` at `when`; `when <= now()` lands on the due list and pops
  /// on the next pop_due(). O(1), allocation-free once the slab is warm.
  TimerId schedule(Tick when, InlineFunction fn);

  /// Disarms a pending timer. Returns false (and does nothing) for a
  /// fired/cancelled/unknown id — generation-stamped ids make this exact
  /// even after the record's slot was recycled.
  bool cancel(TimerId id);

  /// Moves a pending timer's deadline, keeping its callback. Later
  /// deadlines (the per-heartbeat push-out) only rewrite the record;
  /// earlier ones re-place it. Returns false for a dead id.
  bool reschedule(TimerId id, Tick when);

  /// Exact earliest pending deadline (kTickInfinity when idle). May
  /// migrate postponed records (the normalize-top analogue); the result
  /// is cached until the set of pending deadlines changes.
  Tick next_deadline();

  /// Advances the wheel clock to `t`, cascading every slot whose base is
  /// reached: records due by `t` collect on the due list (deadline order,
  /// FIFO ties), the rest redistribute to lower levels.
  void advance_to(Tick t);

  /// Detaches the earliest due callback into `out`; false when nothing
  /// is due. The record is freed before returning, so the callback may
  /// freely schedule/cancel/reschedule — including re-arming itself.
  bool pop_due(InlineFunction& out);

  [[nodiscard]] Tick now() const noexcept { return now_; }
  /// Pending timers (scheduled, not yet fired or cancelled).
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  /// Slab slots ever handed out — the bounded-storage invariant in a
  /// number: flat under cancel/re-arm churn (free-list reuse).
  [[nodiscard]] std::size_t storage_slots() const noexcept {
    return records_.high_water();
  }

 private:
  struct Record {
    Record(InlineFunction f, Tick when) : fn(std::move(f)), deadline(when),
                                          slot_at(when) {}
    InlineFunction fn;
    Tick deadline;  ///< true target instant (lazy reschedule writes here)
    Tick slot_at;   ///< deadline the current placement was keyed under
    SlabHandle prev, next;  ///< intrusive circular list through the slab
  };

  enum class Where { kDue, kWheel, kOverflow };
  struct Placement {
    Where where;
    int level;
    std::uint32_t slot;
  };

  static TimerId encode(SlabHandle h) noexcept {
    return (static_cast<TimerId>(h.slot) << 32) | h.generation;
  }
  static SlabHandle decode(TimerId id) noexcept {
    return {static_cast<std::uint32_t>(id >> 32),
            static_cast<std::uint32_t>(id)};
  }
  static std::uint32_t slot_index(Tick t, int level) noexcept {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(t) >> (kBitsPerLevel * level)) &
        (kSlotsPerLevel - 1));
  }

  [[nodiscard]] Placement classify(Tick slot_at) const noexcept;
  [[nodiscard]] SlabHandle& slot_head(int level, std::uint32_t slot) noexcept {
    return slot_heads_[static_cast<std::size_t>(level) * kSlotsPerLevel + slot];
  }
  [[nodiscard]] Tick slot_base(int level, std::uint32_t slot) const noexcept;

  void link_back(SlabHandle& head, SlabHandle h, Record& rec);
  void unlink(SlabHandle& head, SlabHandle h, Record& rec);
  void insert_due_sorted(SlabHandle h, Record& rec);
  /// Places `rec` by its slot_at: due list, a wheel slot, or overflow.
  void place(SlabHandle h, Record& rec);
  /// Unlinks `rec` from wherever classify() says it is.
  void detach(SlabHandle h, Record& rec);

  void set_occupied(int level, std::uint32_t slot) noexcept;
  void clear_occupied(int level, std::uint32_t slot) noexcept;
  /// First occupied slot index >= `from` at `level`, or -1. Adds the
  /// bitmap words touched to *scanned (the max-scan gauge's unit).
  [[nodiscard]] int first_occupied(int level, std::uint32_t from,
                                   std::uint32_t* scanned) const noexcept;
  /// Earliest occupied (level, slot) across the wheel per invariant 2;
  /// false when every level is empty.
  bool earliest_slot(int* level, std::uint32_t* slot, std::uint32_t* scanned)
      const noexcept;
  /// Redistributes every record of one slot (cascade). `fire_horizon` is
  /// the instant records count as due against (== now_).
  void cascade_slot(int level, std::uint32_t slot);
  void note_scan(std::uint32_t scanned) noexcept;

  Tick now_;
  TimerStats* stats_;
  Slab<Record> records_;
  std::vector<SlabHandle> slot_heads_;  // kLevels * kSlotsPerLevel heads
  std::uint64_t occupied_[kLevels][kSlotsPerLevel / 64] = {};
  SlabHandle due_head_;
  SlabHandle overflow_head_;
  Tick cached_next_ = kTickInfinity;
  bool cache_valid_ = false;
};

}  // namespace twfd::net

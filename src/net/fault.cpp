#include "net/fault.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace twfd::net {
namespace {

[[noreturn]] void bad_spec(const std::string& token, const char* why) {
  throw std::invalid_argument("fault plan: bad token '" + token + "': " + why);
}

double parse_probability(const std::string& token, const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') bad_spec(token, "not a number");
  if (p < 0.0 || p > 1.0) bad_spec(token, "probability outside [0, 1]");
  return p;
}

Tick parse_duration(const std::string& token, const std::string& value) {
  char* end = nullptr;
  const double n = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || n < 0) bad_spec(token, "not a duration");
  const std::string suffix = end;
  if (suffix == "us") return ticks_from_seconds(n * 1e-6);
  if (suffix == "ms") return ticks_from_seconds(n * 1e-3);
  if (suffix == "s") return ticks_from_seconds(n);
  bad_spec(token, "duration needs a us/ms/s suffix");
}

/// Splits "P:REST" (probability, payload); REST may be empty when the
/// colon is absent, in which case P defaults to 1.
std::pair<double, std::string> parse_prob_prefix(const std::string& token,
                                                 const std::string& value) {
  const auto colon = value.find(':');
  if (colon == std::string::npos) return {1.0, value};
  return {parse_probability(token, value.substr(0, colon)),
          value.substr(colon + 1)};
}

std::string format_duration(Tick t) {
  std::ostringstream os;
  if (t % ticks_from_ms(1) == 0) {
    os << (t / ticks_from_ms(1)) << "ms";
  } else {
    os << (t / ticks_from_us(1)) << "us";
  }
  return os.str();
}

std::string format_probability(double p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string token = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    if (token.empty()) continue;

    const auto eq = token.find('=');
    if (eq == std::string::npos) bad_spec(token, "expected key=value");
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "seed") {
      char* end = nullptr;
      plan.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') bad_spec(token, "not an integer");
    } else if (key == "drop") {
      plan.drop = parse_probability(token, value);
    } else if (key == "dup") {
      plan.duplicate = parse_probability(token, value);
    } else if (key == "reorder") {
      plan.reorder = parse_probability(token, value);
    } else if (key == "trunc") {
      plan.truncate = parse_probability(token, value);
    } else if (key == "delay") {
      const auto [p, range] = parse_prob_prefix(token, value);
      const auto dots = range.find("..");
      if (dots == std::string::npos) bad_spec(token, "expected MIN..MAX range");
      plan.delay = p;
      plan.delay_min = parse_duration(token, range.substr(0, dots));
      plan.delay_max = parse_duration(token, range.substr(dots + 2));
      if (plan.delay_max < plan.delay_min) bad_spec(token, "MAX below MIN");
    } else if (key == "reset") {
      plan.tcp_reset = parse_probability(token, value);
    } else if (key == "stall") {
      const auto [p, dur] = parse_prob_prefix(token, value);
      plan.tcp_stall = p;
      plan.tcp_stall_for = parse_duration(token, dur);
    } else if (key == "trickle") {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || n == 0) {
        bad_spec(token, "expected a positive byte count");
      }
      plan.tcp_trickle_bytes = static_cast<std::size_t>(n);
    } else {
      bad_spec(token, "unknown key");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop > 0) os << ",drop=" << format_probability(drop);
  if (duplicate > 0) os << ",dup=" << format_probability(duplicate);
  if (reorder > 0) os << ",reorder=" << format_probability(reorder);
  if (truncate > 0) os << ",trunc=" << format_probability(truncate);
  if (delay > 0) {
    os << ",delay=" << format_probability(delay) << ":"
       << format_duration(delay_min) << ".." << format_duration(delay_max);
  }
  if (tcp_reset > 0) os << ",reset=" << format_probability(tcp_reset);
  if (tcp_stall > 0) {
    os << ",stall=" << format_probability(tcp_stall) << ":"
       << format_duration(tcp_stall_for);
  }
  if (tcp_trickle_bytes > 0) os << ",trickle=" << tcp_trickle_bytes;
  return os.str();
}

FaultEngine::FaultEngine(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

void FaultEngine::mix(std::uint64_t v) noexcept {
  hash_ ^= v;
  hash_ *= 1099511628211ULL;  // FNV-1a prime
}

FaultDecision FaultEngine::next_datagram() {
  // Fixed draw order, every variate consumed unconditionally: the Nth
  // datagram's decision depends only on (seed, N), never on what earlier
  // outcomes were used for.
  FaultDecision d;
  d.drop = rng_.bernoulli(plan_.drop);
  d.duplicate = rng_.bernoulli(plan_.duplicate);
  d.reorder = rng_.bernoulli(plan_.reorder);
  d.truncate = rng_.bernoulli(plan_.truncate);
  const bool delayed = rng_.bernoulli(plan_.delay);
  const double delay_frac = rng_.uniform01();
  if (delayed && plan_.delay_max > 0) {
    d.delay = plan_.delay_min +
              static_cast<Tick>(delay_frac *
                                static_cast<double>(plan_.delay_max - plan_.delay_min));
  }
  ++decisions_;
  mix((std::uint64_t{d.drop} << 0) | (std::uint64_t{d.duplicate} << 1) |
      (std::uint64_t{d.reorder} << 2) | (std::uint64_t{d.truncate} << 3));
  mix(static_cast<std::uint64_t>(d.delay));
  return d;
}

FaultEngine::TcpDecision FaultEngine::next_chunk() {
  TcpDecision d;
  d.reset = rng_.bernoulli(plan_.tcp_reset);
  d.stall = rng_.bernoulli(plan_.tcp_stall);
  ++decisions_;
  mix((std::uint64_t{d.reset} << 0) | (std::uint64_t{d.stall} << 1) | (1ULL << 8));
  return d;
}

FaultStats& FaultStats::operator+=(const FaultStats& o) noexcept {
  offered += o.offered;
  passed += o.passed;
  dropped += o.dropped;
  duplicated += o.duplicated;
  reordered += o.reordered;
  truncated += o.truncated;
  delayed += o.delayed;
  return *this;
}

// --- ChaosTransport -------------------------------------------------------

ChaosTransport::ChaosTransport(Runtime rt, const FaultPlan& plan)
    : rt_(rt), engine_(plan) {}

void ChaosTransport::deliver(PeerId to, std::vector<std::byte> data, Tick delay) {
  if (delay <= 0) {
    rt_.transport->send(to, data);
    return;
  }
  rt_.timers->schedule_at(rt_.clock->now() + delay,
                          [this, to, bytes = std::move(data)] {
                            rt_.transport->send(to, bytes);
                          });
}

void ChaosTransport::flush_held() {
  if (!held_) return;
  auto [to, bytes] = std::move(*held_);
  held_.reset();
  if (held_flush_timer_ != kInvalidTimer) {
    rt_.timers->cancel(held_flush_timer_);
    held_flush_timer_ = kInvalidTimer;
  }
  rt_.transport->send(to, bytes);
}

void ChaosTransport::send(PeerId to, std::span<const std::byte> data) {
  ++stats_.offered;
  const FaultDecision d = engine_.next_datagram();
  if (d.drop) {
    ++stats_.dropped;
    flush_held();  // a held datagram still goes out behind the dropped one
    return;
  }
  std::vector<std::byte> bytes(data.begin(), data.end());
  if (d.truncate && bytes.size() > 1) {
    ++stats_.truncated;
    bytes.resize(bytes.size() / 2);
  }
  if (d.reorder && !held_) {
    // Stash; the next datagram overtakes it. A timer bounds the hold so
    // the final datagram of a burst cannot be withheld forever.
    ++stats_.reordered;
    held_.emplace(to, std::move(bytes));
    const Tick bound =
        engine_.plan().delay_max > 0 ? engine_.plan().delay_max : ticks_from_ms(10);
    held_flush_timer_ =
        rt_.timers->schedule_at(rt_.clock->now() + bound, [this] {
          held_flush_timer_ = kInvalidTimer;
          flush_held();
        });
    return;
  }
  ++stats_.passed;
  if (d.delay > 0) ++stats_.delayed;
  if (d.duplicate) {
    ++stats_.duplicated;
    deliver(to, bytes, d.delay);
  }
  deliver(to, std::move(bytes), d.delay);
  flush_held();
}

void ChaosTransport::send_many(std::span<const PeerId> to,
                               std::span<const std::byte> data) {
  // Per-target decisions: a fan-out under chaos loses/distorts each copy
  // independently, like independent network paths.
  for (const PeerId peer : to) send(peer, data);
}

// --- FaultInjector --------------------------------------------------------

FaultInjector::FaultInjector(Clock& clock, TimerService& timers,
                             const FaultPlan& plan, Sink sink)
    : clock_(clock), timers_(timers), engine_(plan), sink_(std::move(sink)) {}

void FaultInjector::emit(const SocketAddress& from,
                         std::span<const std::byte> data) {
  sink_(from, data, clock_.now());
}

void FaultInjector::flush_held() {
  if (!held_) return;
  Held h = std::move(*held_);
  held_.reset();
  if (held_flush_timer_ != kInvalidTimer) {
    timers_.cancel(held_flush_timer_);
    held_flush_timer_ = kInvalidTimer;
  }
  emit(h.from, h.data);
}

void FaultInjector::offer(const SocketAddress& from,
                          std::span<const std::byte> data, Tick arrival) {
  ++stats_.offered;
  const FaultDecision d = engine_.next_datagram();
  if (d.drop) {
    ++stats_.dropped;
    flush_held();
    return;
  }
  std::span<const std::byte> payload = data;
  if (d.truncate && payload.size() > 1) {
    ++stats_.truncated;
    payload = payload.first(payload.size() / 2);
  }
  if (d.reorder && !held_) {
    ++stats_.reordered;
    held_.emplace(Held{from, {payload.begin(), payload.end()}});
    const Tick bound =
        engine_.plan().delay_max > 0 ? engine_.plan().delay_max : ticks_from_ms(10);
    held_flush_timer_ = timers_.schedule_at(clock_.now() + bound, [this] {
      held_flush_timer_ = kInvalidTimer;
      flush_held();
    });
    return;
  }
  ++stats_.passed;
  if (d.delay > 0) {
    ++stats_.delayed;
    timers_.schedule_at(clock_.now() + d.delay,
                        [this, from, bytes = std::vector<std::byte>(
                                   payload.begin(), payload.end())] {
                          emit(from, bytes);
                        });
    if (d.duplicate) {
      ++stats_.duplicated;
      timers_.schedule_at(clock_.now() + d.delay,
                          [this, from, bytes = std::vector<std::byte>(
                                     payload.begin(), payload.end())] {
                            emit(from, bytes);
                          });
    }
  } else {
    sink_(from, payload, arrival);
    if (d.duplicate) {
      ++stats_.duplicated;
      sink_(from, payload, arrival);
    }
  }
  flush_held();
}

}  // namespace twfd::net

// Little-endian byte codec shared by every TWFD wire format (the UDP
// heartbeat datagrams in net/wire.* and the TCP control frames in
// src/api/control.*).
//
// Explicit per-byte shifts — no struct punning, no host-order leaks —
// and a Reader that never touches memory past the buffer: out-of-range
// reads latch ok() = false and return zeros, so decoders can parse
// optimistically and reject once at the end.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace twfd::net::codec {

class Writer {
 public:
  explicit Writer(std::size_t capacity) { buf_.reserve(capacity); }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// u16 length followed by the raw bytes (the only variable-size field).
  void str16(const std::string& s) {
    u16(static_cast<std::uint16_t>(s.size()));
    for (const char c : s) u8(static_cast<std::uint8_t>(c));
  }
  /// LEB128 varint: 7 value bits per byte, high bit = continuation.
  /// 1 byte below 128, at most 10 bytes for the full u64 range — the
  /// packing behind the federation Digest frames, where deltas between
  /// sorted peer keys are small.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }
  /// Zigzag-mapped varint for signed deltas (small magnitudes of either
  /// sign stay short): n -> (n << 1) ^ (n >> 63).
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(u8()) << (8 * i);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  /// Counterpart of Writer::varint. A varint longer than 10 bytes (or a
  /// 10th byte carrying more than the u64's final bit) is malformed and
  /// latches ok() = false — no silent wrap-around.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const std::uint8_t b = u8();
      if (!ok_) return 0;
      if (shift == 63 && (b & 0xfe) != 0) {
        ok_ = false;  // would overflow the u64
        return 0;
      }
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok_ = false;
    return 0;
  }
  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  /// Counterpart of Writer::str16; declared lengths beyond `max_len` or
  /// past the buffer fail the whole read.
  std::string str16(std::size_t max_len) {
    const std::uint16_t len = u16();
    if (!ok_ || len > max_len || len > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s;
    s.reserve(len);
    for (std::uint16_t i = 0; i < len; ++i) s.push_back(static_cast<char>(u8()));
    return s;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace twfd::net::codec

#include "net/wire.hpp"

#include "net/wire_codec.hpp"

namespace twfd::net {
namespace {

using codec::Reader;
using codec::Writer;

constexpr std::uint8_t kTypeHeartbeat = 1;
constexpr std::uint8_t kTypeIntervalRequest = 2;

void header(Writer& w, std::uint8_t type) {
  w.u32(kWireMagic);
  w.u8(kWireVersion);
  w.u8(type);
}

}  // namespace

std::vector<std::byte> encode(const HeartbeatMsg& msg) {
  Writer w(HeartbeatMsg::kWireSize);
  header(w, kTypeHeartbeat);
  w.u64(msg.sender_id);
  w.i64(msg.seq);
  w.i64(msg.send_time);
  w.i64(msg.interval);
  return w.take();
}

std::vector<std::byte> encode(const IntervalRequestMsg& msg) {
  Writer w(IntervalRequestMsg::kWireSize);
  header(w, kTypeIntervalRequest);
  w.u64(msg.requester_id);
  w.i64(msg.requested_interval);
  return w.take();
}

std::optional<WireMessage> decode(std::span<const std::byte> data) {
  Reader r(data);
  if (r.u32() != kWireMagic) return std::nullopt;
  if (r.u8() != kWireVersion) return std::nullopt;
  const std::uint8_t type = r.u8();
  switch (type) {
    case kTypeHeartbeat: {
      HeartbeatMsg m;
      m.sender_id = r.u64();
      m.seq = r.i64();
      m.send_time = r.i64();
      m.interval = r.i64();
      if (!r.ok() || r.remaining() != 0) return std::nullopt;
      if (m.seq <= 0 || m.interval <= 0) return std::nullopt;
      return m;
    }
    case kTypeIntervalRequest: {
      IntervalRequestMsg m;
      m.requester_id = r.u64();
      m.requested_interval = r.i64();
      if (!r.ok() || r.remaining() != 0) return std::nullopt;
      if (m.requested_interval <= 0) return std::nullopt;
      return m;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace twfd::net

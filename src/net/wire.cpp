#include "net/wire.hpp"

namespace twfd::net {
namespace {

constexpr std::uint8_t kTypeHeartbeat = 1;
constexpr std::uint8_t kTypeIntervalRequest = 2;

class Writer {
 public:
  explicit Writer(std::size_t capacity) { buf_.reserve(capacity); }

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() {
    if (pos_ + 1 > data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void header(Writer& w, std::uint8_t type) {
  w.u32(kWireMagic);
  w.u8(kWireVersion);
  w.u8(type);
}

}  // namespace

std::vector<std::byte> encode(const HeartbeatMsg& msg) {
  Writer w(HeartbeatMsg::kWireSize);
  header(w, kTypeHeartbeat);
  w.u64(msg.sender_id);
  w.i64(msg.seq);
  w.i64(msg.send_time);
  w.i64(msg.interval);
  return w.take();
}

std::vector<std::byte> encode(const IntervalRequestMsg& msg) {
  Writer w(IntervalRequestMsg::kWireSize);
  header(w, kTypeIntervalRequest);
  w.u64(msg.requester_id);
  w.i64(msg.requested_interval);
  return w.take();
}

std::optional<WireMessage> decode(std::span<const std::byte> data) {
  Reader r(data);
  if (r.u32() != kWireMagic) return std::nullopt;
  if (r.u8() != kWireVersion) return std::nullopt;
  const std::uint8_t type = r.u8();
  switch (type) {
    case kTypeHeartbeat: {
      HeartbeatMsg m;
      m.sender_id = r.u64();
      m.seq = r.i64();
      m.send_time = r.i64();
      m.interval = r.i64();
      if (!r.ok() || r.remaining() != 0) return std::nullopt;
      if (m.seq <= 0 || m.interval <= 0) return std::nullopt;
      return m;
    }
    case kTypeIntervalRequest: {
      IntervalRequestMsg m;
      m.requester_id = r.u64();
      m.requested_interval = r.i64();
      if (!r.ok() || r.remaining() != 0) return std::nullopt;
      if (m.requested_interval <= 0) return std::nullopt;
      return m;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace twfd::net

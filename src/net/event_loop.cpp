#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <ctime>
#include <system_error>

#include "common/assert.hpp"

namespace twfd::net {

EventLoop::Stats& EventLoop::Stats::operator+=(const Stats& o) {
  timers.scheduled += o.timers.scheduled;
  timers.cancelled += o.timers.cancelled;
  timers.rescheduled += o.timers.rescheduled;
  timers.fired += o.timers.fired;
  timers.superseded += o.timers.superseded;
  timers.cascades += o.timers.cascades;
  timers.compactions += o.timers.compactions;
  timers.live += o.timers.live;
  timers.wheel_slots_occupied += o.timers.wheel_slots_occupied;
  // A gauge of per-loop scan cost: the fleet-wide worst case is the max.
  timers.wheel_max_scan = std::max(timers.wheel_max_scan, o.timers.wheel_max_scan);
  datagrams_sent += o.datagrams_sent;
  datagrams_received += o.datagrams_received;
  datagrams_injected += o.datagrams_injected;
  send_soft_failures += o.send_soft_failures;
  recv_errors += o.recv_errors;
  rx_batches += o.rx_batches;
  // min merges as "smallest nonzero" (0 means the loop saw no batch yet).
  if (o.rx_batch_min != 0 && (rx_batch_min == 0 || o.rx_batch_min < rx_batch_min)) {
    rx_batch_min = o.rx_batch_min;
  }
  rx_batch_max = std::max(rx_batch_max, o.rx_batch_max);
  rx_kernel_stamps += o.rx_kernel_stamps;
  rx_clock_stamps += o.rx_clock_stamps;
  rx_truncated += o.rx_truncated;
  wakeups_io += o.wakeups_io;
  wakeups_timer += o.wakeups_timer;
  wakeups_cross += o.wakeups_cross;
  wakeups_spurious += o.wakeups_spurious;
  fd_dispatches += o.fd_dispatches;
  return *this;
}

EventLoop::EventLoop(std::uint16_t port)
    : socket_(port), wheel_(clock_.now(), &stats_.timers) {
  open_wake_fd();
}

EventLoop::EventLoop(const UdpSocket::Options& options)
    : socket_(options), wheel_(clock_.now(), &stats_.timers) {
  open_wake_fd();
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_fd_) ::close(wake_write_fd_);
}

void EventLoop::open_wake_fd() {
#ifdef __linux__
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "eventfd()");
  }
  wake_write_fd_ = wake_fd_;
#else
  int fds[2];
  if (::pipe(fds) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe()");
  }
  for (const int fd : {fds[0], fds[1]}) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
  }
  wake_fd_ = fds[0];
  wake_write_fd_ = fds[1];
#endif
}

void EventLoop::wake() noexcept {
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(wake_write_fd_, &one, sizeof one);
  } while (n < 0 && errno == EINTR);
  // EAGAIN means the counter/pipe already holds a pending wake — the loop
  // is guaranteed to notice; nothing more to do.
}

void EventLoop::drain_wake_fd() noexcept {
  std::uint64_t buf;
  ssize_t n;
  do {
    n = ::read(wake_fd_, &buf, sizeof buf);
  } while (n > 0 || (n < 0 && errno == EINTR));
}

Tick EventLoop::now() const { return clock_.now(); }

void EventLoop::send(PeerId to, std::span<const std::byte> data) {
  TWFD_CHECK_MSG(to >= 1 && to <= peer_addrs_.size(), "unknown peer");
  socket_.send_to(peer_addrs_[to - 1], data);
  ++stats_.datagrams_sent;
  stats_.send_soft_failures = socket_.soft_send_failures();
}

void EventLoop::send_many(std::span<const PeerId> to,
                          std::span<const std::byte> data) {
  send_addrs_.clear();
  send_addrs_.reserve(to.size());
  for (const PeerId peer : to) {
    TWFD_CHECK_MSG(peer >= 1 && peer <= peer_addrs_.size(), "unknown peer");
    send_addrs_.push_back(peer_addrs_[peer - 1]);
  }
  socket_.send_batch(send_addrs_, data);
  // Attempts count as sent, matching send(); failures show up in the
  // soft-failure counter, not by under-counting sends.
  stats_.datagrams_sent += to.size();
  stats_.send_soft_failures = socket_.soft_send_failures();
}

void EventLoop::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
}

PeerId EventLoop::add_peer(const SocketAddress& addr) {
  const auto it = peer_ids_.find(addr);
  if (it != peer_ids_.end()) return it->second;
  peer_addrs_.push_back(addr);
  const PeerId id = peer_addrs_.size();
  peer_ids_.emplace(addr, id);
  return id;
}

const SocketAddress& EventLoop::peer_address(PeerId id) const {
  TWFD_CHECK_MSG(id >= 1 && id <= peer_addrs_.size(), "unknown peer");
  return peer_addrs_[id - 1];
}

void EventLoop::watch_fd(int fd, unsigned interest, FdHandler handler) {
  TWFD_CHECK_MSG(fd >= 0, "watch_fd: bad fd");
  watches_[fd] = FdWatch{interest, ++watch_generation_, std::move(handler)};
}

void EventLoop::update_fd(int fd, unsigned interest) {
  const auto it = watches_.find(fd);
  if (it != watches_.end()) it->second.interest = interest;
}

void EventLoop::unwatch_fd(int fd) { watches_.erase(fd); }

void EventLoop::inject_datagram(const SocketAddress& from,
                                std::span<const std::byte> data, Tick arrival) {
  ++stats_.datagrams_injected;
  if (on_receive_) on_receive_(add_peer(from), data, arrival);
}

// ---------------------------------------------------------------------------
// Timer core: hierarchical timing wheel (net::TimerWheel). The loop only
// adapts the TimerService signatures — all placement, cascade and stats
// logic lives in the wheel. Callbacks are wrapped in an InlineFunction;
// the std::function the interface hands over is itself a 32-byte object
// on mainstream ABIs, so the wrap stores inline and adds no allocation.
// ---------------------------------------------------------------------------

TimerId EventLoop::schedule_at(Tick when, std::function<void()> fn) {
  return wheel_.schedule(when, InlineFunction(std::move(fn)));
}

void EventLoop::cancel(TimerId id) { wheel_.cancel(id); }

bool EventLoop::reschedule(TimerId id, Tick when) {
  return wheel_.reschedule(id, when);
}

Tick EventLoop::next_timer_at() { return wheel_.next_deadline(); }

void EventLoop::fire_due_timers() {
  wheel_.advance_to(now());
  // Timers a callback schedules at or before the wheel's clock land on
  // the due list and fire in this same pass — matching the old heap's
  // fixed fire horizon.
  InlineFunction fn;
  while (!is_stopped() && wheel_.pop_due(fn)) {
    fn();
    fn.reset();
  }
}

void EventLoop::drain_socket() {
  for (;;) {
    const auto batch = socket_.receive_batch();
    stats_.recv_errors = socket_.recv_errors();
    if (batch.empty()) return;

    ++stats_.rx_batches;
    const std::uint64_t n = batch.size();
    stats_.datagrams_received += n;
    if (stats_.rx_batch_min == 0 || n < stats_.rx_batch_min) {
      stats_.rx_batch_min = n;
    }
    stats_.rx_batch_max = std::max(stats_.rx_batch_max, n);

    // Timestamp ladder: kernel stamps are CLOCK_REALTIME, the Tick domain
    // is monotonic, so sample the offset between the two ONCE per batch
    // and apply it to every stamped datagram. Unstamped datagrams (and
    // the portable path) share one clock read per batch — never one per
    // datagram. Mapped stamps are clamped to [last_arrival_, batch_now]:
    // arrival can neither run backwards nor sit in the future.
    const Tick batch_now = now();
    std::int64_t offset = 0;
    bool have_offset = false;
    for (const auto& item : batch) {
      Tick arrival = batch_now;
      if (item.kernel_time_ns != 0) {
        if (!have_offset) {
          timespec rt{};
          ::clock_gettime(CLOCK_REALTIME, &rt);
          offset = batch_now - (static_cast<std::int64_t>(rt.tv_sec) * 1'000'000'000 +
                                rt.tv_nsec);
          have_offset = true;
        }
        arrival = std::min(item.kernel_time_ns + offset, batch_now);
        ++stats_.rx_kernel_stamps;
      } else {
        ++stats_.rx_clock_stamps;
      }
      arrival = std::max(arrival, last_arrival_);
      last_arrival_ = arrival;
      if (item.truncated) ++stats_.rx_truncated;
      if (on_receive_) on_receive_(add_peer(item.from), item.data, arrival);
    }
    if (on_batch_end_) on_batch_end_();
    // Deliver the whole in-hand batch before honouring stop: those
    // datagrams were already consumed from the kernel and would be lost.
    if (is_stopped()) return;
  }
}

void EventLoop::run_until(Tick deadline) {
  stopped_.store(false, std::memory_order_release);
  while (!is_stopped()) {
    fire_due_timers();
    if (is_stopped()) break;
    drain_socket();
    if (is_stopped()) break;

    const Tick t = now();
    if (t >= deadline) break;
    const Tick next_due = next_timer_at();
    const Tick wake_at = std::min(deadline, next_due);
    const Tick wait = wake_at <= t ? 0 : wake_at - t;
    // Sleep at most 50 ms per turn so stop() from signal-ish contexts and
    // socket readiness both stay responsive. Partial milliseconds round
    // *up*: truncating a sub-millisecond wait to a 0 ms poll would spin
    // the CPU until the deadline instead of sleeping.
    const Tick capped = std::min<Tick>(ticks_from_ms(50), wait);
    const int timeout_ms =
        static_cast<int>((capped + ticks_from_ms(1) - 1) / ticks_from_ms(1));

    pfds_.clear();
    pfds_.push_back({socket_.fd(), POLLIN, 0});
    pfds_.push_back({wake_fd_, POLLIN, 0});
    poll_snapshot_.clear();
    for (const auto& [fd, w] : watches_) {
      short ev = 0;
      if (w.interest & kFdRead) ev |= POLLIN;
      if (w.interest & kFdWrite) ev |= POLLOUT;
      if (ev == 0) continue;  // parked watch (e.g. accept backoff)
      pfds_.push_back({fd, ev, 0});
      poll_snapshot_.emplace_back(fd, w.generation);
    }
    const int rc = ::poll(pfds_.data(), static_cast<nfds_t>(pfds_.size()),
                          timeout_ms);
    const bool woken = rc > 0 && (pfds_[1].revents & POLLIN) != 0;
    if (woken) {
      drain_wake_fd();
      ++stats_.wakeups_cross;
      if (on_wake_) on_wake_();
    }
    bool fd_io = false;
    if (rc > 0) {
      for (std::size_t i = 2; i < pfds_.size() && !is_stopped(); ++i) {
        const short revents = pfds_[i].revents;
        if (revents == 0) continue;
        fd_io = true;
        const auto it = watches_.find(pfds_[i].fd);
        // Skip watches dropped — or dropped and replaced — by an earlier
        // handler this round; a replacement gets fresh readiness next turn.
        if (it == watches_.end() ||
            it->second.generation != poll_snapshot_[i - 2].second) {
          continue;
        }
        unsigned events = 0;
        if (revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) events |= kFdRead;
        if (revents & POLLOUT) events |= kFdWrite;
        if (events == 0) continue;
        // Copy: the handler may unwatch its own fd, destroying the stored
        // std::function mid-call otherwise.
        const FdHandler handler = it->second.handler;
        ++stats_.fd_dispatches;
        handler(events);
      }
    }
    if (rc > 0 && ((pfds_[0].revents & POLLIN) != 0 || fd_io)) {
      ++stats_.wakeups_io;
    } else if (next_due <= now()) {
      ++stats_.wakeups_timer;
    } else if (!woken) {
      ++stats_.wakeups_spurious;
    }
  }
}

}  // namespace twfd::net

#include "net/event_loop.hpp"

#include <poll.h>

#include <algorithm>

#include "common/assert.hpp"

namespace twfd::net {

EventLoop::EventLoop(std::uint16_t port) : socket_(port) {}

Tick EventLoop::now() const { return clock_.now(); }

void EventLoop::send(PeerId to, std::span<const std::byte> data) {
  TWFD_CHECK_MSG(to >= 1 && to <= peer_addrs_.size(), "unknown peer");
  socket_.send_to(peer_addrs_[to - 1], data);
  ++sent_;
}

void EventLoop::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
}

PeerId EventLoop::add_peer(const SocketAddress& addr) {
  const auto it = peer_ids_.find(addr);
  if (it != peer_ids_.end()) return it->second;
  peer_addrs_.push_back(addr);
  const PeerId id = peer_addrs_.size();
  peer_ids_.emplace(addr, id);
  return id;
}

TimerId EventLoop::schedule_at(Tick when, std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  timer_fns_.emplace(id, std::move(fn));
  timers_.push({when, order_counter_++, id});
  return id;
}

void EventLoop::cancel(TimerId id) { timer_fns_.erase(id); }

Tick EventLoop::next_timer_at() const {
  // The heap may hold cancelled entries; peek past is not possible with
  // priority_queue, so report the top (a cancelled top only costs one
  // spurious wakeup).
  return timers_.empty() ? kTickInfinity : timers_.top().at;
}

void EventLoop::fire_due_timers() {
  const Tick t = now();
  while (!timers_.empty() && timers_.top().at <= t) {
    const TimerId id = timers_.top().id;
    timers_.pop();
    const auto it = timer_fns_.find(id);
    if (it == timer_fns_.end()) continue;  // cancelled
    auto fn = std::move(it->second);
    timer_fns_.erase(it);
    fn();
    if (stopped_) return;
  }
}

void EventLoop::drain_socket() {
  while (auto dgram = socket_.receive()) {
    ++received_;
    if (on_receive_) {
      const PeerId from = add_peer(dgram->from);
      on_receive_(from, std::span<const std::byte>(dgram->data));
    }
    if (stopped_) return;
  }
}

void EventLoop::run_until(Tick deadline) {
  stopped_ = false;
  while (!stopped_) {
    fire_due_timers();
    if (stopped_) break;
    drain_socket();
    if (stopped_) break;

    const Tick t = now();
    if (t >= deadline) break;
    const Tick wake = std::min(deadline, next_timer_at());
    const Tick wait = wake <= t ? 0 : wake - t;
    // Sleep at most 50 ms per turn so stop() from signal-ish contexts and
    // socket readiness both stay responsive.
    const int timeout_ms = static_cast<int>(
        std::min<Tick>(ticks_from_ms(50), wait) / ticks_from_ms(1));

    pollfd pfd{socket_.fd(), POLLIN, 0};
    (void)::poll(&pfd, 1, std::max(0, timeout_ms));
  }
}

}  // namespace twfd::net

#include "net/event_loop.hpp"

#include <poll.h>

#include <algorithm>

#include "common/assert.hpp"

namespace twfd::net {

EventLoop::EventLoop(std::uint16_t port) : socket_(port) {}

Tick EventLoop::now() const { return clock_.now(); }

void EventLoop::send(PeerId to, std::span<const std::byte> data) {
  TWFD_CHECK_MSG(to >= 1 && to <= peer_addrs_.size(), "unknown peer");
  socket_.send_to(peer_addrs_[to - 1], data);
  ++stats_.datagrams_sent;
}

void EventLoop::set_receive_handler(ReceiveHandler handler) {
  on_receive_ = std::move(handler);
}

PeerId EventLoop::add_peer(const SocketAddress& addr) {
  const auto it = peer_ids_.find(addr);
  if (it != peer_ids_.end()) return it->second;
  peer_addrs_.push_back(addr);
  const PeerId id = peer_addrs_.size();
  peer_ids_.emplace(addr, id);
  return id;
}

// ---------------------------------------------------------------------------
// Timer core: lazy-deletion min-heap with stale accounting.
//
// A timer is live iff it has a record in timers_. Each live timer owns one
// canonical heap entry, identified by (at, order) == (record.heap_at,
// record.order); every other entry referencing its id — and every entry
// whose id has no record — is stale. cancel() and the earlier-reschedule
// path only bump stale_; the entries themselves are skipped when they
// reach the top, and the whole heap is rebuilt from the live records once
// stale entries reach the live count, bounding storage at 2x live.
// ---------------------------------------------------------------------------

void EventLoop::push_canonical(Tick at, TimerId id, TimerRecord& rec) {
  rec.heap_at = at;
  rec.order = order_counter_++;
  heap_.push_back({at, rec.order, id});
  std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
}

TimerId EventLoop::schedule_at(Tick when, std::function<void()> fn) {
  const TimerId id = next_timer_id_++;
  TimerRecord& rec =
      timers_.emplace(id, TimerRecord{std::move(fn), when, 0, 0}).first->second;
  push_canonical(when, id, rec);
  ++stats_.timers.scheduled;
  return id;
}

void EventLoop::cancel(TimerId id) {
  if (timers_.erase(id) == 0) return;  // fired or unknown: no-op
  ++stale_;
  ++stats_.timers.cancelled;
  compact_if_stale_heavy();
}

bool EventLoop::reschedule(TimerId id, Tick when) {
  const auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  TimerRecord& rec = it->second;
  rec.deadline = when;
  if (when < rec.heap_at) {
    // The canonical entry would surface too late; plant a fresh one and
    // let the old entry die as stale. The common service-layer pattern
    // (freshness deadline pushed *out* by each heartbeat) takes the
    // cheaper branch below: deadline moves, the heap is untouched, and
    // normalize_top() migrates the entry when it surfaces.
    ++stale_;
    push_canonical(when, id, rec);
    compact_if_stale_heavy();
  }
  ++stats_.timers.rescheduled;
  return true;
}

EventLoop::TimerRecord* EventLoop::normalize_top() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    const auto it = timers_.find(top.id);
    if (it == timers_.end() || it->second.heap_at != top.at ||
        it->second.order != top.order) {
      // Cancelled, or superseded by an earlier reschedule.
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      heap_.pop_back();
      --stale_;
      continue;
    }
    TimerRecord& rec = it->second;
    if (rec.deadline > top.at) {
      // Postponed by reschedule(); migrate the canonical entry now.
      std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
      heap_.pop_back();
      push_canonical(rec.deadline, top.id, rec);
      continue;
    }
    return &rec;
  }
  return nullptr;
}

void EventLoop::compact_if_stale_heavy() {
  if (stale_ == 0 || stale_ < timers_.size()) return;
  heap_.clear();
  for (const auto& [id, rec] : timers_) {
    heap_.push_back({rec.heap_at, rec.order, id});
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});
  stale_ = 0;
  ++stats_.timers.compactions;
}

Tick EventLoop::next_timer_at() {
  return normalize_top() == nullptr ? kTickInfinity : heap_.front().at;
}

void EventLoop::fire_due_timers() {
  const Tick t = now();
  while (!stopped_) {
    if (normalize_top() == nullptr || heap_.front().at > t) return;
    const TimerId id = heap_.front().id;
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    heap_.pop_back();
    const auto it = timers_.find(id);
    auto fn = std::move(it->second.fn);
    timers_.erase(it);
    ++stats_.timers.fired;
    fn();
  }
}

void EventLoop::drain_socket() {
  while (auto dgram = socket_.receive()) {
    ++stats_.datagrams_received;
    if (on_receive_) {
      const PeerId from = add_peer(dgram->from);
      on_receive_(from, std::span<const std::byte>(dgram->data));
    }
    if (stopped_) return;
  }
}

void EventLoop::run_until(Tick deadline) {
  stopped_ = false;
  while (!stopped_) {
    fire_due_timers();
    if (stopped_) break;
    drain_socket();
    if (stopped_) break;

    const Tick t = now();
    if (t >= deadline) break;
    const Tick next_due = next_timer_at();
    const Tick wake = std::min(deadline, next_due);
    const Tick wait = wake <= t ? 0 : wake - t;
    // Sleep at most 50 ms per turn so stop() from signal-ish contexts and
    // socket readiness both stay responsive. Partial milliseconds round
    // *up*: truncating a sub-millisecond wait to a 0 ms poll would spin
    // the CPU until the deadline instead of sleeping.
    const Tick capped = std::min<Tick>(ticks_from_ms(50), wait);
    const int timeout_ms =
        static_cast<int>((capped + ticks_from_ms(1) - 1) / ticks_from_ms(1));

    pollfd pfd{socket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0 && (pfd.revents & POLLIN) != 0) {
      ++stats_.wakeups_io;
    } else if (next_due <= now()) {
      ++stats_.wakeups_timer;
    } else {
      ++stats_.wakeups_spurious;
    }
  }
}

}  // namespace twfd::net

#include "net/timer_wheel.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"

namespace twfd::net {

TimerWheel::TimerWheel(Tick start, TimerStats* stats)
    : now_(start),
      stats_(stats),
      slot_heads_(static_cast<std::size_t>(kLevels) * kSlotsPerLevel) {
  TWFD_CHECK(stats_ != nullptr);
  TWFD_CHECK_MSG(start >= 0, "wheel clock must be non-negative");
}

TimerWheel::Placement TimerWheel::classify(Tick slot_at) const noexcept {
  if (slot_at <= now_) return {Where::kDue, 0, 0};
  const std::uint64_t x = static_cast<std::uint64_t>(slot_at) ^
                          static_cast<std::uint64_t>(now_);
  if ((x >> kWheelBits) != 0) return {Where::kOverflow, 0, 0};
  const int level = (63 - std::countl_zero(x)) / kBitsPerLevel;
  return {Where::kWheel, level, slot_index(slot_at, level)};
}

Tick TimerWheel::slot_base(int level, std::uint32_t slot) const noexcept {
  const int up = kBitsPerLevel * (level + 1);
  const std::uint64_t high = (static_cast<std::uint64_t>(now_) >> up) << up;
  return static_cast<Tick>(
      high | (static_cast<std::uint64_t>(slot) << (kBitsPerLevel * level)));
}

void TimerWheel::link_back(SlabHandle& head, SlabHandle h, Record& rec) {
  if (!head.valid()) {
    rec.prev = rec.next = h;
    head = h;
    return;
  }
  Record* first = records_.get(head);
  const SlabHandle tail = first->prev;
  records_.get(tail)->next = h;
  rec.prev = tail;
  rec.next = head;
  first->prev = h;
}

void TimerWheel::unlink(SlabHandle& head, SlabHandle h, Record& rec) {
  if (rec.next == h) {  // sole element
    head = SlabHandle{};
    return;
  }
  records_.get(rec.prev)->next = rec.next;
  records_.get(rec.next)->prev = rec.prev;
  if (head == h) head = rec.next;
}

void TimerWheel::insert_due_sorted(SlabHandle h, Record& rec) {
  if (!due_head_.valid()) {
    rec.prev = rec.next = h;
    due_head_ = h;
    return;
  }
  // Walk from the tail: advance feeds the list in non-decreasing deadline
  // order, so the steady-state insertion is an O(1) append. Ties insert
  // after their equals — schedule FIFO.
  SlabHandle cur = records_.get(due_head_)->prev;
  for (;;) {
    Record* c = records_.get(cur);
    if (c->deadline <= rec.deadline) {
      const SlabHandle nxt = c->next;
      c->next = h;
      rec.prev = cur;
      rec.next = nxt;
      records_.get(nxt)->prev = h;
      return;
    }
    if (cur == due_head_) {
      link_back(due_head_, h, rec);  // circularly: insert before the head
      due_head_ = h;                 // ...and become the new minimum
      return;
    }
    cur = c->prev;
  }
}

void TimerWheel::place(SlabHandle h, Record& rec) {
  const Placement p = classify(rec.slot_at);
  switch (p.where) {
    case Where::kDue:
      insert_due_sorted(h, rec);
      return;
    case Where::kOverflow:
      link_back(overflow_head_, h, rec);
      return;
    case Where::kWheel: {
      SlabHandle& head = slot_head(p.level, p.slot);
      if (!head.valid()) set_occupied(p.level, p.slot);
      link_back(head, h, rec);
      return;
    }
  }
}

void TimerWheel::detach(SlabHandle h, Record& rec) {
  const Placement p = classify(rec.slot_at);
  switch (p.where) {
    case Where::kDue:
      unlink(due_head_, h, rec);
      return;
    case Where::kOverflow:
      unlink(overflow_head_, h, rec);
      return;
    case Where::kWheel: {
      SlabHandle& head = slot_head(p.level, p.slot);
      unlink(head, h, rec);
      if (!head.valid()) clear_occupied(p.level, p.slot);
      return;
    }
  }
}

void TimerWheel::set_occupied(int level, std::uint32_t slot) noexcept {
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
  ++stats_->wheel_slots_occupied;
}

void TimerWheel::clear_occupied(int level, std::uint32_t slot) noexcept {
  occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  --stats_->wheel_slots_occupied;
}

int TimerWheel::first_occupied(int level, std::uint32_t from,
                               std::uint32_t* scanned) const noexcept {
  if (from >= kSlotsPerLevel) return -1;
  std::uint32_t word = from >> 6;
  std::uint64_t bits = occupied_[level][word] &
                       (~std::uint64_t{0} << (from & 63));
  for (;;) {
    ++*scanned;
    if (bits != 0) {
      return static_cast<int>((word << 6) +
                              static_cast<std::uint32_t>(std::countr_zero(bits)));
    }
    if (++word == kSlotsPerLevel / 64) return -1;
    bits = occupied_[level][word];
  }
}

bool TimerWheel::earliest_slot(int* level, std::uint32_t* slot,
                               std::uint32_t* scanned) const noexcept {
  // Invariant 2: occupied slots sit strictly ahead of now's index at each
  // level, and all of level l precedes all of level l+1 — the first hit
  // scanning levels bottom-up is the earliest slot, no wraparound.
  for (int l = 0; l < kLevels; ++l) {
    const int s = first_occupied(l, slot_index(now_, l) + 1, scanned);
    if (s >= 0) {
      *level = l;
      *slot = static_cast<std::uint32_t>(s);
      return true;
    }
  }
  return false;
}

void TimerWheel::cascade_slot(int level, std::uint32_t slot) {
  SlabHandle& head = slot_head(level, slot);
  while (head.valid()) {
    const SlabHandle h = head;
    Record& rec = *records_.get(h);
    unlink(head, h, rec);
    rec.slot_at = rec.deadline;  // re-key: lazy push-outs resolve here
    place(h, rec);
    if (rec.deadline > now_) ++stats_->cascades;
  }
  clear_occupied(level, slot);
}

void TimerWheel::note_scan(std::uint32_t scanned) noexcept {
  if (scanned > stats_->wheel_max_scan) stats_->wheel_max_scan = scanned;
}

TimerId TimerWheel::schedule(Tick when, InlineFunction fn) {
  const SlabHandle h = records_.emplace(std::move(fn), when);
  place(h, *records_.get(h));
  ++stats_->scheduled;
  ++stats_->live;
  if (cache_valid_ && when < cached_next_) cached_next_ = when;
  return encode(h);
}

bool TimerWheel::cancel(TimerId id) {
  const SlabHandle h = decode(id);
  Record* rec = records_.get(h);
  if (rec == nullptr) return false;  // fired, cancelled or recycled: no-op
  if (cache_valid_ && rec->deadline == cached_next_) cache_valid_ = false;
  detach(h, *rec);
  records_.erase(h);
  ++stats_->cancelled;
  --stats_->live;
  return true;
}

bool TimerWheel::reschedule(TimerId id, Tick when) {
  const SlabHandle h = decode(id);
  Record* rec = records_.get(h);
  if (rec == nullptr) return false;
  ++stats_->rescheduled;
  if (cache_valid_ && rec->deadline == cached_next_) cache_valid_ = false;
  if (when >= rec->slot_at && rec->slot_at > now_) {
    // Lazy push-out — the per-heartbeat re-arm. The placement stays valid
    // for the old key; the record migrates when its slot is processed.
    rec->deadline = when;
  } else {
    // Earlier deadline, or the record is already on the due list (whose
    // sorted order a deadline rewrite would corrupt): re-place eagerly.
    detach(h, *rec);
    rec->deadline = rec->slot_at = when;
    place(h, *rec);
    ++stats_->superseded;
  }
  if (cache_valid_ && when < cached_next_) cached_next_ = when;
  return true;
}

Tick TimerWheel::next_deadline() {
  if (cache_valid_) return cached_next_;
  Tick best = kTickInfinity;
  if (due_head_.valid()) {
    best = records_.get(due_head_)->deadline;  // list is deadline-sorted
  } else {
    for (;;) {
      int level = 0;
      std::uint32_t slot = 0;
      std::uint32_t scanned = 0;
      const bool found = earliest_slot(&level, &slot, &scanned);
      note_scan(scanned);
      if (!found) break;
      // The earliest slot bounds the answer, but lazy push-outs can leave
      // records keyed under deadlines they no longer mean — the exact
      // minimum needs the residents' true deadlines.
      Tick slot_min = kTickInfinity;
      const SlabHandle head = slot_head(level, slot);
      SlabHandle cur = head;
      do {
        const Record* r = records_.get(cur);
        slot_min = std::min(slot_min, r->deadline);
        cur = r->next;
      } while (cur != head);
      const Tick span = Tick{1} << (kBitsPerLevel * level);
      if (slot_min < slot_base(level, slot) + span) {
        best = slot_min;
        break;
      }
      // Every resident was pushed out past this slot's window: migrate
      // them to their real homes and rescan (the normalize-top analogue).
      cascade_slot(level, slot);
    }
    if (best == kTickInfinity && overflow_head_.valid()) {
      SlabHandle cur = overflow_head_;
      do {
        const Record* r = records_.get(cur);
        best = std::min(best, r->deadline);
        cur = r->next;
      } while (cur != overflow_head_);
    }
  }
  cached_next_ = best;
  cache_valid_ = true;
  return best;
}

void TimerWheel::advance_to(Tick t) {
  if (t <= now_) return;
  const Tick entered = now_;
  for (;;) {
    int level = 0;
    std::uint32_t slot = 0;
    std::uint32_t scanned = 0;
    const bool found = earliest_slot(&level, &slot, &scanned);
    note_scan(scanned);
    if (!found) break;
    const Tick base = slot_base(level, slot);
    if (base > t) break;
    // Invariant 1: redistribute the slot before moving past its base, so
    // stored (slot_at, now) keys keep hashing to where records live.
    now_ = base;
    cascade_slot(level, slot);
  }
  now_ = t;
  if ((static_cast<std::uint64_t>(entered ^ t) >> kWheelBits) != 0 &&
      overflow_head_.valid()) {
    // The horizon rolled over a 2^60 ns boundary (decades of uptime, or a
    // giant virtual-time jump): overflow entries may be placeable now.
    bool moved = true;
    while (moved && overflow_head_.valid()) {
      moved = false;
      SlabHandle cur = overflow_head_;
      for (;;) {
        Record& rec = *records_.get(cur);
        const SlabHandle nxt = rec.next;
        if (classify(rec.deadline).where != Where::kOverflow) {
          unlink(overflow_head_, cur, rec);
          rec.slot_at = rec.deadline;
          place(cur, rec);
          ++stats_->cascades;
          moved = true;
          break;  // the unlink invalidated the walk; restart
        }
        if (nxt == overflow_head_) break;
        cur = nxt;
      }
    }
  }
  cache_valid_ = false;
}

bool TimerWheel::pop_due(InlineFunction& out) {
  if (!due_head_.valid()) return false;
  const SlabHandle h = due_head_;
  Record& rec = *records_.get(h);
  // Due residents are strictly due (deadline <= now_): reschedule of a
  // due record always re-places eagerly, and now() never goes backwards.
  const Tick deadline = rec.deadline;
  unlink(due_head_, h, rec);
  out = std::move(rec.fn);
  records_.erase(h);
  ++stats_->fired;
  --stats_->live;
  if (cache_valid_ && deadline == cached_next_) cache_valid_ = false;
  return true;
}

}  // namespace twfd::net

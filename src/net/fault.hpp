// Deterministic fault injection (the chaos layer).
//
// A FaultPlan is a seeded schedule of network faults; everything that
// consumes one draws its decisions from a FaultEngine, which hashes the
// decision stream so two runs with the same plan can be asserted
// bit-identical (deterministic chaos replay — the seed IS the run).
//
// Three consumers:
//   ChaosTransport  wraps a Transport on the SEND side (a beacon whose
//                   heartbeats are dropped/delayed/reordered/duplicated/
//                   truncated before they reach the wire);
//   FaultInjector   sits on the RECEIVE side between the socket and the
//                   dispatcher (a monitor whose inbound datagrams are
//                   distorted) — this is what --chaos wires into
//                   twfd_monitor and the sharded service;
//   ChaosTcpProxy   (chaos_proxy.hpp) applies the TCP half of the plan —
//                   mid-stream resets, stalls, byte-trickle — in front of
//                   the FDaaS API port.
//
// Plan grammar (comma-separated key=value, parsed by FaultPlan::parse):
//
//   seed=N              engine seed (default 1); logged by every consumer
//   drop=P              drop each datagram with probability P
//   dup=P               deliver a duplicate immediately after the original
//   reorder=P           hold the datagram and deliver it after the next one
//   trunc=P             cut the payload in half (exercises decoder guards)
//   delay=P:MIN..MAX    with probability P delay by uniform [MIN, MAX)
//   reset=P             TCP: reset the connection after a forwarded chunk
//   stall=P:DUR         TCP: freeze the flow for DUR after a chunk
//   trickle=N           TCP: forward at most N bytes per pump turn
//
// Durations take us/ms/s suffixes. Example:
//   --chaos "seed=7,drop=0.1,reorder=0.05,dup=0.02,delay=0.2:2ms..20ms,reset=0.01"
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/runtime.hpp"
#include "common/time.hpp"
#include "net/udp_socket.hpp"

namespace twfd::net {

struct FaultPlan {
  std::uint64_t seed = 1;

  // --- datagram faults (probabilities in [0, 1]) ---
  double drop = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  double truncate = 0.0;
  double delay = 0.0;
  Tick delay_min = 0;
  Tick delay_max = 0;

  // --- TCP stream faults (ChaosTcpProxy) ---
  double tcp_reset = 0.0;
  double tcp_stall = 0.0;
  Tick tcp_stall_for = 0;
  std::size_t tcp_trickle_bytes = 0;  ///< 0 = unlimited

  [[nodiscard]] bool any_datagram_faults() const noexcept {
    return drop > 0 || duplicate > 0 || reorder > 0 || truncate > 0 || delay > 0;
  }
  [[nodiscard]] bool any_tcp_faults() const noexcept {
    return tcp_reset > 0 || tcp_stall > 0 || tcp_trickle_bytes > 0;
  }

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending token. An empty spec is a valid all-zero plan.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);
  /// Canonical spec string (only non-default keys); parse(to_string())
  /// round-trips.
  [[nodiscard]] std::string to_string() const;
};

/// What the engine decided for one datagram. Decisions are mutually
/// exclusive except duplicate/truncate, which compose with pass.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  bool truncate = false;
  Tick delay = 0;  ///< 0 = deliver now
};

/// The deterministic decision source. One engine per chaos consumer; the
/// stream of decisions is fully determined by (plan, number of calls),
/// and schedule_hash() folds it into a value tests compare across runs.
class FaultEngine {
 public:
  explicit FaultEngine(const FaultPlan& plan);

  /// Decision for the next datagram. Always draws the same number of
  /// variates regardless of outcome, so schedules stay aligned.
  [[nodiscard]] FaultDecision next_datagram();

  struct TcpDecision {
    bool reset = false;
    bool stall = false;
  };
  /// Decision after forwarding one TCP chunk.
  [[nodiscard]] TcpDecision next_chunk();

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  /// FNV-1a over the decision stream — identical across runs with the
  /// same plan, different across seeds (with overwhelming probability).
  [[nodiscard]] std::uint64_t schedule_hash() const noexcept { return hash_; }

 private:
  void mix(std::uint64_t v) noexcept;

  FaultPlan plan_;
  Xoshiro256 rng_;
  std::uint64_t decisions_ = 0;
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Cumulative fault accounting, shared by both datagram wrappers.
struct FaultStats {
  std::uint64_t offered = 0;
  std::uint64_t passed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t truncated = 0;
  std::uint64_t delayed = 0;

  FaultStats& operator+=(const FaultStats& o) noexcept;
};

/// Send-side chaos: a Transport that distorts outbound datagrams before
/// handing them to the wrapped transport. Delays and reorders are
/// realized with the runtime's own timers, so the schedule is
/// deterministic in the simulator and tick-accurate live.
class ChaosTransport final : public Transport {
 public:
  /// `rt.transport` is the wrapped transport; clock+timers realize
  /// delays. All pointers must outlive the wrapper.
  ChaosTransport(Runtime rt, const FaultPlan& plan);

  void send(PeerId to, std::span<const std::byte> data) override;
  void send_many(std::span<const PeerId> to,
                 std::span<const std::byte> data) override;
  void set_receive_handler(ReceiveHandler handler) override {
    rt_.transport->set_receive_handler(std::move(handler));
  }

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultEngine& engine() const noexcept { return engine_; }

 private:
  void deliver(PeerId to, std::vector<std::byte> data, Tick delay);
  void flush_held();

  Runtime rt_;
  FaultEngine engine_;
  FaultStats stats_;
  // Reorder hold slot: the stashed datagram goes out after the next one.
  std::optional<std::pair<PeerId, std::vector<std::byte>>> held_;
  TimerId held_flush_timer_ = kInvalidTimer;
};

/// Receive-side chaos: sits between a socket's receive handler and the
/// real consumer (Dispatcher::ingest / the shard router), applying the
/// datagram half of a plan to inbound traffic. Delayed and reordered
/// datagrams are copied and re-delivered from a timer, stamped with the
/// clock at delivery time — exactly what a slow network would produce:
/// the estimator sees the datagram arrive late.
class FaultInjector {
 public:
  using Sink = std::function<void(const SocketAddress& from,
                                  std::span<const std::byte> data, Tick arrival)>;

  /// `timers`/`clock` must belong to the thread that calls offer().
  FaultInjector(Clock& clock, TimerService& timers, const FaultPlan& plan,
                Sink sink);

  /// Runs one datagram through the plan; the sink sees it now, later,
  /// twice, truncated — or never.
  void offer(const SocketAddress& from, std::span<const std::byte> data,
             Tick arrival);

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultEngine& engine() const noexcept { return engine_; }

 private:
  struct Held {
    SocketAddress from;
    std::vector<std::byte> data;
  };
  void emit(const SocketAddress& from, std::span<const std::byte> data);
  void flush_held();

  Clock& clock_;
  TimerService& timers_;
  FaultEngine engine_;
  FaultStats stats_;
  Sink sink_;
  std::optional<Held> held_;
  TimerId held_flush_timer_ = kInvalidTimer;
};

}  // namespace twfd::net

// LegacyTimerHeap: the binary min-heap + std::map timer core that
// net::EventLoop used before the timing wheel, preserved verbatim in
// behavior so bench/timer_hotpath can measure wheel-vs-heap and tests can
// check fire-order parity on random op sequences. Test/bench-only: gated
// behind TWFD_ENABLE_LEGACY_TIMER_HEAP so production binaries cannot link
// it back in by accident.
//
// Semantics (see docs/runtime.md history): lazy deletion with accounting.
// A timer is live iff it has a record in timers_. Each live timer owns one
// canonical heap entry, identified by (at, order); every other entry is
// stale — cancelled, or superseded by an earlier-deadline reschedule. The
// stale entries are skipped when they surface at the top, and the heap is
// rebuilt from live records once stale entries reach the live count,
// bounding storage at 2x live.
#pragma once

#ifdef TWFD_ENABLE_LEGACY_TIMER_HEAP

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/runtime.hpp"
#include "common/time.hpp"

namespace twfd::net {

class LegacyTimerHeap {
 public:
  explicit LegacyTimerHeap(TimerStats* stats) : stats_(stats) {}

  LegacyTimerHeap(const LegacyTimerHeap&) = delete;
  LegacyTimerHeap& operator=(const LegacyTimerHeap&) = delete;

  TimerId schedule(Tick when, std::function<void()> fn) {
    const TimerId id = next_timer_id_++;
    TimerRecord& rec =
        timers_.emplace(id, TimerRecord{std::move(fn), when, 0, 0}).first->second;
    push_canonical(when, id, rec);
    ++stats_->scheduled;
    ++stats_->live;
    return id;
  }

  bool cancel(TimerId id) {
    if (timers_.erase(id) == 0) return false;  // fired or unknown: no-op
    ++stale_;
    ++stats_->cancelled;
    --stats_->live;
    compact_if_stale_heavy();
    return true;
  }

  bool reschedule(TimerId id, Tick when) {
    const auto it = timers_.find(id);
    if (it == timers_.end()) return false;
    TimerRecord& rec = it->second;
    rec.deadline = when;
    if (when < rec.heap_at) {
      // The canonical entry would surface too late; plant a fresh one and
      // let the old entry die as stale. Deadlines pushed *out* (the
      // per-heartbeat re-arm) leave the heap untouched; normalize_top()
      // migrates the entry when it surfaces.
      ++stale_;
      ++stats_->superseded;
      push_canonical(when, id, rec);
      compact_if_stale_heavy();
    }
    ++stats_->rescheduled;
    return true;
  }

  /// Earliest live deadline (kTickInfinity when none). Normalizes the top.
  Tick next_deadline() {
    return normalize_top() == nullptr ? kTickInfinity : heap_.front().at;
  }

  /// Detaches the earliest timer due at or before `t` into `out`; false
  /// when nothing is due.
  bool pop_due(Tick t, std::function<void()>& out) {
    if (normalize_top() == nullptr || heap_.front().at > t) return false;
    const TimerId id = heap_.front().id;
    std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
    heap_.pop_back();
    const auto it = timers_.find(id);
    out = std::move(it->second.fn);
    timers_.erase(it);
    ++stats_->fired;
    --stats_->live;
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return timers_.size(); }
  [[nodiscard]] std::size_t heap_entries() const noexcept { return heap_.size(); }

 private:
  struct HeapEntry {
    Tick at;
    std::uint64_t order;
    TimerId id;
  };
  struct HeapCmp {
    // std::push_heap builds a max-heap; invert for earliest-first, with
    // FIFO tiebreak on the insertion order.
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a.at != b.at ? a.at > b.at : a.order > b.order;
    }
  };
  struct TimerRecord {
    std::function<void()> fn;
    Tick deadline;        // current target instant
    Tick heap_at;         // `at` of this timer's canonical heap entry
    std::uint64_t order;  // `order` of the canonical entry
  };

  void push_canonical(Tick at, TimerId id, TimerRecord& rec) {
    rec.heap_at = at;
    rec.order = order_counter_++;
    heap_.push_back({at, rec.order, id});
    std::push_heap(heap_.begin(), heap_.end(), HeapCmp{});
  }

  TimerRecord* normalize_top() {
    while (!heap_.empty()) {
      const HeapEntry top = heap_.front();
      const auto it = timers_.find(top.id);
      if (it == timers_.end() || it->second.heap_at != top.at ||
          it->second.order != top.order) {
        // Cancelled, or superseded by an earlier reschedule.
        std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
        heap_.pop_back();
        --stale_;
        continue;
      }
      TimerRecord& rec = it->second;
      if (rec.deadline > top.at) {
        // Postponed by reschedule(); migrate the canonical entry now.
        std::pop_heap(heap_.begin(), heap_.end(), HeapCmp{});
        heap_.pop_back();
        push_canonical(rec.deadline, top.id, rec);
        continue;
      }
      return &rec;
    }
    return nullptr;
  }

  void compact_if_stale_heavy() {
    if (stale_ == 0 || stale_ < timers_.size()) return;
    heap_.clear();
    for (const auto& [id, rec] : timers_) {
      heap_.push_back({rec.heap_at, rec.order, id});
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapCmp{});
    stale_ = 0;
    ++stats_->compactions;
  }

  TimerStats* stats_;
  std::vector<HeapEntry> heap_;
  std::map<TimerId, TimerRecord> timers_;
  std::size_t stale_ = 0;
  TimerId next_timer_id_ = 1;
  std::uint64_t order_counter_ = 0;
};

}  // namespace twfd::net

#endif  // TWFD_ENABLE_LEGACY_TIMER_HEAP

// Wire protocol for the live failure-detection service.
//
// Two datagram types, fixed-size, explicit little-endian encoding (no
// struct punning, no host-order leaks):
//   Heartbeat       p -> q   sequence number, sender-clock timestamp and
//                            the sender's current heartbeat interval
//                            (monitors need Delta_i for Chen-style
//                            estimation; carrying it makes the service
//                            self-describing when intervals adapt).
//   IntervalRequest q -> p   asks the sender to emit heartbeats at least
//                            this often (the shared-service Delta_i,min
//                            negotiation of Section V-C).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "common/time.hpp"

namespace twfd::net {

inline constexpr std::uint32_t kWireMagic = 0x54574844;  // "TWHD"
inline constexpr std::uint8_t kWireVersion = 1;

struct HeartbeatMsg {
  std::uint64_t sender_id = 0;
  std::int64_t seq = 0;
  Tick send_time = 0;
  Tick interval = 0;

  static constexpr std::size_t kWireSize = 4 + 1 + 1 + 8 + 8 + 8 + 8;
};

struct IntervalRequestMsg {
  std::uint64_t requester_id = 0;
  Tick requested_interval = 0;

  static constexpr std::size_t kWireSize = 4 + 1 + 1 + 8 + 8;
};

using WireMessage = std::variant<HeartbeatMsg, IntervalRequestMsg>;

/// Serialises a message into a self-contained datagram payload.
[[nodiscard]] std::vector<std::byte> encode(const HeartbeatMsg& msg);
[[nodiscard]] std::vector<std::byte> encode(const IntervalRequestMsg& msg);

/// Parses a datagram; std::nullopt on bad magic/version/size (malformed
/// datagrams are dropped, never trusted).
[[nodiscard]] std::optional<WireMessage> decode(std::span<const std::byte> data);

}  // namespace twfd::net

#include "core/shared_margin.hpp"

namespace twfd::core {

SharedMarginDetector::SharedMarginDetector(std::vector<std::size_t> windows,
                                           Tick interval)
    : estimator_(windows, interval) {}

std::size_t SharedMarginDetector::add_application(std::string app_name, Tick margin) {
  TWFD_CHECK(margin >= 0);
  apps_.push_back({std::move(app_name), margin});
  return apps_.size() - 1;
}

void SharedMarginDetector::on_heartbeat(std::int64_t seq, Tick /*send_time*/,
                                        Tick arrival_time) {
  if (seq <= highest_seq_) return;
  highest_seq_ = seq;
  estimator_.add(seq, arrival_time);
  current_ea_ = estimator_.expected_arrival(seq + 1);
}

void SharedMarginDetector::set_bootstrap_anchor(Tick anchor) {
  bootstrap_anchor_ = anchor;
}

Tick SharedMarginDetector::suspect_after(std::size_t j) const {
  TWFD_CHECK(j < apps_.size());
  if (current_ea_ == kTickInfinity) {
    if (bootstrap_anchor_ == kTickInfinity) return kTickInfinity;
    return tick_add_sat(tick_add_sat(bootstrap_anchor_, estimator_.interval()),
                        apps_[j].margin);
  }
  return tick_add_sat(current_ea_, apps_[j].margin);
}

void SharedMarginDetector::reset() {
  estimator_.clear();
  highest_seq_ = 0;
  current_ea_ = kTickInfinity;
  bootstrap_anchor_ = kTickInfinity;
}

void SharedMarginDetector::rebuild(Tick interval) {
  estimator_.reset(interval);
  apps_.clear();
  highest_seq_ = 0;
  current_ea_ = kTickInfinity;
  bootstrap_anchor_ = kTickInfinity;
}

}  // namespace twfd::core

// Extension beyond the paper: 2W-FD with a Jacobson-adapted safety margin.
//
// The published 2W-FD uses a *constant* Delta_to chosen from the QoS
// tuple; Bertier's detector instead adapts its margin to the observed
// prediction error but is stuck with one window. This detector combines
// them: the freshness point is the max-of-windows expected arrival
// (Eq 12) plus a margin driven by Jacobson's estimation (Eqs 3-6) of the
// max-estimator's own error, floored at `min_margin` so the QoS contract
// T_D >= Delta_i + min_margin still holds. Explored in
// bench/ablation_windows as a design-space data point.
#pragma once

#include "core/multi_window.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::core {

class AdaptiveMultiWindowDetector final : public detect::FailureDetector {
 public:
  struct Params {
    std::vector<std::size_t> windows = {1, 1000};
    Tick interval = ticks_from_ms(100);
    /// Margin floor (the aggressiveness knob, like 2W-FD's Delta_to).
    Tick min_margin = 0;
    /// Jacobson weights (Bertier's defaults).
    double gamma = 0.1;
    double beta = 1.0;
    double phi = 4.0;
  };

  explicit AdaptiveMultiWindowDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return next_freshness_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Tick current_margin() const noexcept { return margin_; }

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  MaxWindowEstimator estimator_;
  double delay_ = 0.0;
  double var_ = 0.0;
  Tick margin_ = 0;
  Tick predicted_ea_ = kTickInfinity;
  Tick next_freshness_ = kTickInfinity;
};

}  // namespace twfd::core

// Uniform construction of every detector family in the evaluation
// (Section IV-C2): Chen, Bertier, phi accrual, ED, and 2W/MW-FD. The
// benchmark harness sweeps each family's tuning parameter through specs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/failure_detector.hpp"

namespace twfd::core {

struct DetectorSpec {
  enum class Kind : std::uint8_t {
    Chen,
    Bertier,
    Phi,
    Ed,
    MultiWindow,
    NfdS,
    FixedTimeout,
    AdaptiveMultiWindow,
  };

  Kind kind = Kind::MultiWindow;
  /// Chen: windows[0]; MultiWindow: all entries; others: windows[0] is the
  /// sampling-window size.
  std::vector<std::size_t> windows = {1, 1000};
  /// Chen / MultiWindow safety margin Delta_to.
  Tick safety_margin = 0;
  /// Phi threshold Phi, or ED threshold E.
  double threshold = 1.0;

  [[nodiscard]] static DetectorSpec chen(std::size_t window, Tick margin);
  [[nodiscard]] static DetectorSpec bertier(std::size_t window = 1000);
  [[nodiscard]] static DetectorSpec phi(double threshold, std::size_t window = 1000);
  [[nodiscard]] static DetectorSpec ed(double threshold, std::size_t window = 1000);
  [[nodiscard]] static DetectorSpec two_window(std::size_t short_w, std::size_t long_w,
                                               Tick margin);
  [[nodiscard]] static DetectorSpec multi_window(std::vector<std::size_t> windows,
                                                 Tick margin);
  /// Extension: max-of-windows estimation with a Jacobson-adapted margin
  /// floored at `min_margin` (see core/adaptive_multi_window.hpp).
  [[nodiscard]] static DetectorSpec adaptive_two_window(std::size_t short_w,
                                                        std::size_t long_w,
                                                        Tick min_margin);
  /// Chen's synchronized-clock NFD-S (needs the known skew at
  /// make_detector time; supplementary baseline).
  [[nodiscard]] static DetectorSpec nfd_s(Tick margin);
  /// Naive fixed-timeout detector (`margin` is the silence tolerance).
  [[nodiscard]] static DetectorSpec fixed_timeout(Tick timeout);

  /// Family label without tuning values ("chen(1000)", "2w(1,1000)", ...).
  [[nodiscard]] std::string family_name() const;
};

/// Instantiates the detector; `interval` is the monitored sender's Delta_i
/// (used by the Chen-style expected-arrival estimators). `known_skew` is
/// only consumed by NFD-S, which assumes synchronized clocks.
[[nodiscard]] std::unique_ptr<detect::FailureDetector> make_detector(
    const DetectorSpec& spec, Tick interval, Tick known_skew = 0);

}  // namespace twfd::core

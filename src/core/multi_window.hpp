// 2W-FD / MW-FD — the paper's contribution (Section III).
//
// The detector keeps several sliding windows of heartbeat arrival times
// (the paper uses two: a short-term window that reacts instantly to bursty
// conditions and a long-term window that keeps estimates conservative when
// recent heartbeats were fast). Each window yields a Chen-style expected
// arrival EA(n_k); the freshness point is computed from their maximum
// (Eq 12):
//   tau_{l+1} = max_k EA_{l+1}(n_k) + Delta_to
// Consequently the detector only makes the mistakes *every* single-window
// Chen instance would make (Eq 13) — verified exactly by a property test.
#pragma once

#include <vector>

#include "detect/arrival_estimator.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::core {

/// The max-of-expected-arrivals estimator shared by MultiWindowDetector
/// and the shared-service detector (Section V). O(#windows) per update.
class MaxWindowEstimator {
 public:
  MaxWindowEstimator(const std::vector<std::size_t>& windows, Tick interval);

  void add(std::int64_t seq, Tick arrival);

  /// max_k EA(n_k) for heartbeat `next_seq`; requires >= 1 sample.
  [[nodiscard]] Tick expected_arrival(std::int64_t next_seq) const;

  /// EA of a single window (diagnostics / tests).
  [[nodiscard]] Tick expected_arrival_of(std::size_t window_index,
                                         std::int64_t next_seq) const;

  [[nodiscard]] std::size_t window_count() const noexcept {
    return estimators_.size();
  }
  [[nodiscard]] const std::vector<std::size_t>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] Tick interval() const noexcept;

  void clear();

  /// Re-bases every window on a new Delta_i and drops all samples,
  /// reusing the existing window storage — no allocation. The slab peer
  /// table rebuilds embedded detectors in place with this.
  void reset(Tick interval);

 private:
  std::vector<std::size_t> windows_;
  std::vector<detect::ArrivalWindowEstimator> estimators_;
};

/// The Multiple Windows Failure Detector (Algorithm 1).
class MultiWindowDetector final : public detect::FailureDetector {
 public:
  struct Params {
    /// Window sizes n_1..n_K. The paper's best configuration — and the
    /// published 2W-FD — is {1, 1000}.
    std::vector<std::size_t> windows = {1, 1000};
    /// Constant safety margin Delta_to (Eq 12), the QoS tuning knob.
    Tick safety_margin = ticks_from_ms(100);
    /// The sender's heartbeat interval Delta_i.
    Tick interval = ticks_from_ms(100);
  };

  explicit MultiWindowDetector(Params params);

  [[nodiscard]] Tick suspect_after() const override { return next_freshness_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] Tick current_expected_arrival() const noexcept { return current_ea_; }

 protected:
  void process_fresh(std::int64_t seq, Tick send_time, Tick arrival_time) override;

 private:
  Params params_;
  MaxWindowEstimator estimator_;
  Tick next_freshness_ = kTickInfinity;
  Tick current_ea_ = kTickInfinity;
};

/// Convenience factory for the paper's published two-window configuration.
[[nodiscard]] MultiWindowDetector::Params two_window_params(
    std::size_t short_window, std::size_t long_window, Tick safety_margin,
    Tick interval);

}  // namespace twfd::core

// Shared-estimation detector for failure detection as a service (Section V).
//
// When several applications on one host monitor the same remote process,
// the service receives a single heartbeat stream (at the combined interval
// Delta_i,min) and keeps ONE multi-window arrival estimation — but each
// application j gets its own safety margin Delta_to,j, hence its own
// freshness points tau_{l+1,j} = maxEA_{l+1} + Delta_to,j and its own
// Trust/Suspect output (Section V-C, Step 4). This gives every application
// the illusion of a dedicated detector at the cost of one estimator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multi_window.hpp"
#include "detect/failure_detector.hpp"

namespace twfd::core {

class SharedMarginDetector {
 public:
  /// `windows`/`interval` configure the shared MaxWindowEstimator; the
  /// interval must be the combined Delta_i,min the sender actually uses.
  SharedMarginDetector(std::vector<std::size_t> windows, Tick interval);

  /// Registers an application with safety margin Delta_to,j.
  /// Returns its index. Margins may be added before feeding heartbeats.
  std::size_t add_application(std::string app_name, Tick margin);

  /// Feeds one heartbeat to the shared estimation; stale (seq <= highest)
  /// heartbeats are ignored, as in Algorithm 1.
  void on_heartbeat(std::int64_t seq, Tick send_time, Tick arrival_time);

  /// Arms the bootstrap deadline: before ANY heartbeat has been seen,
  /// application j is suspected from anchor + interval + margin_j
  /// (Algorithm 1 initialises tau_0 so that silence from the start is
  /// eventually suspected; without an anchor the detector trusts until
  /// the first heartbeat). A heartbeat clears the bootstrap state.
  void set_bootstrap_anchor(Tick anchor);

  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }
  [[nodiscard]] const std::string& app_name(std::size_t j) const {
    return apps_[j].name;
  }
  [[nodiscard]] Tick margin(std::size_t j) const { return apps_[j].margin; }

  /// Application j's suspicion instant given no further heartbeats.
  [[nodiscard]] Tick suspect_after(std::size_t j) const;

  /// Application j's output at time t.
  [[nodiscard]] detect::Output output_at(std::size_t j, Tick t) const {
    return t >= suspect_after(j) ? detect::Output::Suspect : detect::Output::Trust;
  }

  [[nodiscard]] std::int64_t highest_seq() const noexcept { return highest_seq_; }
  [[nodiscard]] Tick interval() const noexcept { return estimator_.interval(); }

  void reset();

  /// Full re-base for a new combined interval: drops the application set,
  /// every arrival sample and the bootstrap anchor, re-bases each window
  /// on `interval`. Reuses all existing storage (window rings, app
  /// vector capacity) — no allocation. The slab peer table rebuilds its
  /// embedded detectors in place with this instead of re-constructing.
  void rebuild(Tick interval);

 private:
  struct App {
    std::string name;
    Tick margin = 0;
  };

  MaxWindowEstimator estimator_;
  std::vector<App> apps_;
  std::int64_t highest_seq_ = 0;
  Tick current_ea_ = kTickInfinity;
  Tick bootstrap_anchor_ = kTickInfinity;
};

}  // namespace twfd::core

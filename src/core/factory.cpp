#include "core/factory.hpp"

#include "common/assert.hpp"
#include "core/adaptive_multi_window.hpp"
#include "core/multi_window.hpp"
#include "detect/bertier.hpp"
#include "detect/chen.hpp"
#include "detect/ed.hpp"
#include "detect/fixed_timeout.hpp"
#include "detect/nfd_s.hpp"
#include "detect/phi_accrual.hpp"

namespace twfd::core {

DetectorSpec DetectorSpec::chen(std::size_t window, Tick margin) {
  DetectorSpec s;
  s.kind = Kind::Chen;
  s.windows = {window};
  s.safety_margin = margin;
  return s;
}

DetectorSpec DetectorSpec::bertier(std::size_t window) {
  DetectorSpec s;
  s.kind = Kind::Bertier;
  s.windows = {window};
  return s;
}

DetectorSpec DetectorSpec::phi(double threshold, std::size_t window) {
  DetectorSpec s;
  s.kind = Kind::Phi;
  s.windows = {window};
  s.threshold = threshold;
  return s;
}

DetectorSpec DetectorSpec::ed(double threshold, std::size_t window) {
  DetectorSpec s;
  s.kind = Kind::Ed;
  s.windows = {window};
  s.threshold = threshold;
  return s;
}

DetectorSpec DetectorSpec::two_window(std::size_t short_w, std::size_t long_w,
                                      Tick margin) {
  DetectorSpec s;
  s.kind = Kind::MultiWindow;
  s.windows = {short_w, long_w};
  s.safety_margin = margin;
  return s;
}

DetectorSpec DetectorSpec::multi_window(std::vector<std::size_t> windows, Tick margin) {
  DetectorSpec s;
  s.kind = Kind::MultiWindow;
  s.windows = std::move(windows);
  s.safety_margin = margin;
  return s;
}

DetectorSpec DetectorSpec::adaptive_two_window(std::size_t short_w,
                                               std::size_t long_w,
                                               Tick min_margin) {
  DetectorSpec s;
  s.kind = Kind::AdaptiveMultiWindow;
  s.windows = {short_w, long_w};
  s.safety_margin = min_margin;
  return s;
}

DetectorSpec DetectorSpec::nfd_s(Tick margin) {
  DetectorSpec s;
  s.kind = Kind::NfdS;
  s.windows = {1};
  s.safety_margin = margin;
  return s;
}

DetectorSpec DetectorSpec::fixed_timeout(Tick timeout) {
  DetectorSpec s;
  s.kind = Kind::FixedTimeout;
  s.windows = {1};
  s.safety_margin = timeout;
  return s;
}

std::string DetectorSpec::family_name() const {
  switch (kind) {
    case Kind::Chen:
      return "chen(" + std::to_string(windows.at(0)) + ")";
    case Kind::Bertier:
      return "bertier";
    case Kind::Phi:
      return "phi";
    case Kind::Ed:
      return "ed";
    case Kind::MultiWindow: {
      std::string s = windows.size() == 2 ? "2w(" : "mw(";
      for (std::size_t i = 0; i < windows.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(windows[i]);
      }
      return s + ")";
    }
    case Kind::AdaptiveMultiWindow: {
      std::string s = "a2w(";
      for (std::size_t i = 0; i < windows.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(windows[i]);
      }
      return s + ")";
    }
    case Kind::NfdS:
      return "nfd-s";
    case Kind::FixedTimeout:
      return "fixed";
  }
  return "unknown";
}

std::unique_ptr<detect::FailureDetector> make_detector(const DetectorSpec& spec,
                                                       Tick interval,
                                                       Tick known_skew) {
  TWFD_CHECK(!spec.windows.empty());
  switch (spec.kind) {
    case DetectorSpec::Kind::Chen: {
      detect::ChenDetector::Params p;
      p.window = spec.windows[0];
      p.safety_margin = spec.safety_margin;
      p.interval = interval;
      return std::make_unique<detect::ChenDetector>(p);
    }
    case DetectorSpec::Kind::Bertier: {
      detect::BertierDetector::Params p;
      p.window = spec.windows[0];
      p.interval = interval;
      return std::make_unique<detect::BertierDetector>(p);
    }
    case DetectorSpec::Kind::Phi: {
      detect::PhiAccrualDetector::Params p;
      p.window = spec.windows[0];
      p.threshold = spec.threshold;
      return std::make_unique<detect::PhiAccrualDetector>(p);
    }
    case DetectorSpec::Kind::Ed: {
      detect::EdDetector::Params p;
      p.window = spec.windows[0];
      p.threshold = spec.threshold;
      return std::make_unique<detect::EdDetector>(p);
    }
    case DetectorSpec::Kind::MultiWindow: {
      MultiWindowDetector::Params p;
      p.windows = spec.windows;
      p.safety_margin = spec.safety_margin;
      p.interval = interval;
      return std::make_unique<MultiWindowDetector>(p);
    }
    case DetectorSpec::Kind::AdaptiveMultiWindow: {
      AdaptiveMultiWindowDetector::Params p;
      p.windows = spec.windows;
      p.min_margin = spec.safety_margin;
      p.interval = interval;
      return std::make_unique<AdaptiveMultiWindowDetector>(p);
    }
    case DetectorSpec::Kind::NfdS: {
      detect::NfdSDetector::Params p;
      p.interval = interval;
      p.safety_margin = spec.safety_margin;
      p.known_skew = known_skew;
      return std::make_unique<detect::NfdSDetector>(p);
    }
    case DetectorSpec::Kind::FixedTimeout: {
      detect::FixedTimeoutDetector::Params p;
      p.timeout = spec.safety_margin;
      return std::make_unique<detect::FixedTimeoutDetector>(p);
    }
  }
  TWFD_CHECK_MSG(false, "unreachable detector kind");
  return nullptr;
}

}  // namespace twfd::core

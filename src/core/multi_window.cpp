#include "core/multi_window.hpp"

#include <algorithm>

namespace twfd::core {

MaxWindowEstimator::MaxWindowEstimator(const std::vector<std::size_t>& windows,
                                       Tick interval)
    : windows_(windows) {
  TWFD_CHECK_MSG(!windows.empty(), "at least one window required");
  estimators_.reserve(windows.size());
  for (auto w : windows) {
    TWFD_CHECK_MSG(w >= 1, "window size must be >= 1");
    estimators_.emplace_back(w, interval);
  }
}

void MaxWindowEstimator::add(std::int64_t seq, Tick arrival) {
  for (auto& e : estimators_) e.add(seq, arrival);
}

Tick MaxWindowEstimator::expected_arrival(std::int64_t next_seq) const {
  Tick ea = kTickNegInfinity;
  for (const auto& e : estimators_) {
    ea = std::max(ea, e.expected_arrival(next_seq));
  }
  return ea;
}

Tick MaxWindowEstimator::expected_arrival_of(std::size_t window_index,
                                             std::int64_t next_seq) const {
  TWFD_CHECK(window_index < estimators_.size());
  return estimators_[window_index].expected_arrival(next_seq);
}

bool MaxWindowEstimator::empty() const noexcept {
  return estimators_.front().count() == 0;
}

Tick MaxWindowEstimator::interval() const noexcept {
  return estimators_.front().interval();
}

void MaxWindowEstimator::clear() {
  for (auto& e : estimators_) e.clear();
}

void MaxWindowEstimator::reset(Tick interval) {
  for (auto& e : estimators_) e.reset(interval);
}

MultiWindowDetector::MultiWindowDetector(Params params)
    : params_(params), estimator_(params.windows, params.interval) {
  TWFD_CHECK(params.safety_margin >= 0);
}

void MultiWindowDetector::process_fresh(std::int64_t seq, Tick /*send_time*/,
                                        Tick arrival_time) {
  estimator_.add(seq, arrival_time);
  current_ea_ = estimator_.expected_arrival(seq + 1);
  next_freshness_ = tick_add_sat(current_ea_, params_.safety_margin);
}

void MultiWindowDetector::reset() {
  FailureDetector::reset();
  estimator_.clear();
  next_freshness_ = kTickInfinity;
  current_ea_ = kTickInfinity;
}

std::string MultiWindowDetector::name() const {
  std::string s = params_.windows.size() == 2 ? "2w(" : "mw(";
  for (std::size_t i = 0; i < params_.windows.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(params_.windows[i]);
  }
  s += ")";
  return s;
}

MultiWindowDetector::Params two_window_params(std::size_t short_window,
                                              std::size_t long_window,
                                              Tick safety_margin, Tick interval) {
  MultiWindowDetector::Params p;
  p.windows = {short_window, long_window};
  p.safety_margin = safety_margin;
  p.interval = interval;
  return p;
}

}  // namespace twfd::core

#include "core/adaptive_multi_window.hpp"

#include <cmath>

namespace twfd::core {

AdaptiveMultiWindowDetector::AdaptiveMultiWindowDetector(Params params)
    : params_(params), estimator_(params.windows, params.interval) {
  TWFD_CHECK(params.min_margin >= 0);
  TWFD_CHECK(params.gamma > 0 && params.gamma <= 1);
  margin_ = params_.min_margin;
}

void AdaptiveMultiWindowDetector::process_fresh(std::int64_t seq, Tick /*send_time*/,
                                                Tick arrival_time) {
  if (predicted_ea_ != kTickInfinity) {
    // Error of the max-estimator's last prediction (negative when the
    // conservative max overshoots — Jacobson tracks both directions).
    const double error = to_seconds(arrival_time - predicted_ea_) - delay_;
    delay_ += params_.gamma * error;
    var_ += params_.gamma * (std::fabs(error) - var_);
  }
  const double adaptive_s = params_.beta * delay_ + params_.phi * var_;
  const Tick adaptive = ticks_from_seconds(adaptive_s > 0.0 ? adaptive_s : 0.0);
  margin_ = std::max(params_.min_margin, adaptive);

  estimator_.add(seq, arrival_time);
  predicted_ea_ = estimator_.expected_arrival(seq + 1);
  next_freshness_ = tick_add_sat(predicted_ea_, margin_);
}

void AdaptiveMultiWindowDetector::reset() {
  FailureDetector::reset();
  estimator_.clear();
  delay_ = 0.0;
  var_ = 0.0;
  margin_ = params_.min_margin;
  predicted_ea_ = kTickInfinity;
  next_freshness_ = kTickInfinity;
}

std::string AdaptiveMultiWindowDetector::name() const {
  std::string s = "a2w(";
  for (std::size_t i = 0; i < params_.windows.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(params_.windows[i]);
  }
  return s + ")";
}

}  // namespace twfd::core

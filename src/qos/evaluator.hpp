// Trace-replay QoS evaluator (the paper's measurement methodology,
// Section IV-A): logged arrival times are fed to a detector and its output
// over continuous time is reconstructed exactly.
//
// Detectors expose suspect_after() — the instant their output turns to
// Suspect absent further heartbeats — so the evaluator reconstructs the
// full Trust/Suspect timeline with O(1) work per heartbeat and measures:
//   T_D   mean detection time (worst-case crash right after each send)
//   T_MR  mistake rate (S-transitions per second; p never crashes)
//   P_A   query accuracy probability (fraction of time in Trust)
//   T_M   mean mistake duration
#pragma once

#include <vector>

#include "detect/failure_detector.hpp"
#include "qos/metrics.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::qos {

struct EvalOptions {
  /// Record every individual mistake (needed for Fig 8/9 analyses).
  bool record_mistakes = false;
  /// Exclude this many leading delivered heartbeats from the metrics
  /// (lets tests measure steady-state behaviour after window warm-up).
  std::size_t skip_first = 0;
};

struct EvalResult {
  QosMetrics metrics;
  std::vector<MistakeRecord> mistakes;  // filled iff record_mistakes
};

/// Replays `trace` through `detector` (which is reset() first).
[[nodiscard]] EvalResult evaluate(detect::FailureDetector& detector,
                                  const trace::Trace& trace,
                                  const EvalOptions& options = {});

}  // namespace twfd::qos

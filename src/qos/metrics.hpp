// QoS metrics for failure detectors (Section II-A2, after Chen et al.).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace twfd::qos {

/// One false suspicion during replay (p never crashes, so every
/// S-transition is a mistake).
struct MistakeRecord {
  /// Instant of the S-transition (receiver clock).
  Tick start = 0;
  /// Instant of the following T-transition (or observation end).
  Tick end = 0;
  /// Identity of the mistake: the sequence number of the heartbeat the
  /// detector was awaiting when it wrongly suspected (highest seen + 1).
  /// Used for the Eq 13 / Figure 9 set algebra.
  std::int64_t awaiting_seq = 0;

  [[nodiscard]] Tick duration() const noexcept { return end - start; }
};

/// Aggregate QoS measurements from one replay.
struct QosMetrics {
  std::string detector;

  /// T_D: mean detection time in seconds — for each fresh heartbeat m_l,
  /// the time from its send instant to the moment the detector would
  /// suspect if m_l were p's last message (worst-case crash position).
  double detection_time_s = 0;
  /// Tail detection times (streaming P^2 estimates) — what an SLA on
  /// worst-case failover latency actually cares about.
  double detection_time_p95_s = 0;
  double detection_time_p99_s = 0;
  double detection_time_max_s = 0;
  std::size_t detection_samples = 0;

  /// T_MR as a rate: S-transitions per second of observed time. (The
  /// equivalent mistake recurrence time is 1/rate.)
  double mistake_rate_per_s = 0;
  std::size_t mistake_count = 0;

  /// P_A: probability the output is correct (Trust) at a random time.
  double query_accuracy = 1.0;

  /// T_M: mean mistake duration in seconds.
  double mistake_duration_s = 0;

  /// Observation window (first to last delivered heartbeat), seconds.
  double observed_s = 0;

  /// Mean mistake recurrence time in seconds (inf if no mistakes).
  [[nodiscard]] double mistake_recurrence_s() const {
    return mistake_rate_per_s > 0 ? 1.0 / mistake_rate_per_s : kInf;
  }

  static constexpr double kInf = 1e300;
};

}  // namespace twfd::qos

#include "qos/parallel_eval.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace twfd::qos {

std::vector<EvalResult> evaluate_many(const std::vector<core::DetectorSpec>& specs,
                                      const trace::Trace& trace,
                                      const EvalOptions& options,
                                      std::size_t threads) {
  std::vector<EvalResult> results(specs.size());
  if (specs.empty()) return results;

  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, specs.size());

  if (threads == 1) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto detector = core::make_detector(specs[i], trace.interval(),
                                          trace.clock_skew());
      results[i] = evaluate(*detector, trace, options);
    }
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      try {
        auto detector = core::make_detector(specs[i], trace.interval(),
                                            trace.clock_skew());
        results[i] = evaluate(*detector, trace, options);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace twfd::qos

// Empirical detection-time measurement by crash injection.
//
// The evaluator's T_D is analytic: "if p crashed right after sending m_l,
// detection would occur at suspect_after". This module validates that
// convention end-to-end: it injects crashes at sampled heartbeat indices
// (p falls silent right after the send; messages already sent are still
// delivered), replays the prefix, and measures when the detector's final
// suspicion actually begins. One replay serves all injected crashes, so
// thousands of crash samples cost a single pass.
#pragma once

#include <cstddef>
#include <cstdint>

#include "detect/failure_detector.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::qos {

struct CrashExperimentResult {
  std::size_t crashes = 0;
  double mean_td_s = 0;
  double min_td_s = 0;
  double max_td_s = 0;
  double p99_td_s = 0;
  /// Crashes never detected (detector still trusting with no pending
  /// freshness point — only possible during warm-up).
  std::size_t undetected = 0;
};

/// Injects `crashes` crash points, evenly spread over the trace's send
/// sequence (skipping a leading warm-up of `skip_first` heartbeats), and
/// measures the time from each crash to the start of permanent suspicion.
/// The detector is reset() first. FIFO delivery is assumed (the synthetic
/// scenarios generate FIFO traces).
[[nodiscard]] CrashExperimentResult run_crash_experiment(
    detect::FailureDetector& detector, const trace::Trace& trace,
    std::size_t crashes = 1000, std::size_t skip_first = 10);

}  // namespace twfd::qos

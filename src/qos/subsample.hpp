// Subsample analysis (Table I / Figure 8): attribute every mistake to the
// named trace period containing the heartbeat it was awaiting, and count
// per period.
#pragma once

#include <string>
#include <vector>

#include "qos/metrics.hpp"
#include "trace/scenario.hpp"

namespace twfd::qos {

struct PeriodMistakeCount {
  std::string period;
  std::size_t mistakes = 0;
};

/// Counts mistakes per period. Mistakes awaiting a sequence number outside
/// every period are ignored.
[[nodiscard]] std::vector<PeriodMistakeCount> count_mistakes_by_period(
    const std::vector<MistakeRecord>& mistakes,
    const std::vector<trace::Period>& periods);

}  // namespace twfd::qos

// Mistake identity sets (Section III-C, Eq 13 and Figure 9).
//
// A mistake's identity is the sequence number of the heartbeat the
// detector was awaiting when it wrongly suspected. Because the
// largest-received-sequence state evolves identically for every detector
// fed the same trace, "Chen(W1) and Chen(W2) make the same mistake" is
// well-defined, and the paper's claim
//   Mistakes(2W_{W1,W2}) = Mistakes(Chen_{W1}) \cap Mistakes(Chen_{W2})
// becomes exact set algebra over these identities.
#pragma once

#include <cstdint>
#include <vector>

#include "qos/metrics.hpp"

namespace twfd::qos {

class MistakeSet {
 public:
  MistakeSet() = default;

  /// Builds the identity set from recorded mistakes (deduplicated, sorted).
  [[nodiscard]] static MistakeSet from_records(const std::vector<MistakeRecord>& recs);

  [[nodiscard]] static MistakeSet from_ids(std::vector<std::int64_t> ids);

  [[nodiscard]] MistakeSet intersect(const MistakeSet& other) const;
  [[nodiscard]] MistakeSet unite(const MistakeSet& other) const;
  [[nodiscard]] MistakeSet subtract(const MistakeSet& other) const;

  [[nodiscard]] bool contains(std::int64_t id) const;
  [[nodiscard]] bool is_subset_of(const MistakeSet& other) const;
  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }
  [[nodiscard]] const std::vector<std::int64_t>& ids() const noexcept { return ids_; }

  friend bool operator==(const MistakeSet&, const MistakeSet&) = default;

 private:
  std::vector<std::int64_t> ids_;  // sorted, unique
};

}  // namespace twfd::qos

#include "qos/mistake_set.hpp"

#include <algorithm>
#include <iterator>

namespace twfd::qos {

MistakeSet MistakeSet::from_records(const std::vector<MistakeRecord>& recs) {
  std::vector<std::int64_t> ids;
  ids.reserve(recs.size());
  for (const auto& r : recs) ids.push_back(r.awaiting_seq);
  return from_ids(std::move(ids));
}

MistakeSet MistakeSet::from_ids(std::vector<std::int64_t> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  MistakeSet s;
  s.ids_ = std::move(ids);
  return s;
}

MistakeSet MistakeSet::intersect(const MistakeSet& other) const {
  MistakeSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(), other.ids_.end(),
                        std::back_inserter(out.ids_));
  return out;
}

MistakeSet MistakeSet::unite(const MistakeSet& other) const {
  MistakeSet out;
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(), other.ids_.end(),
                 std::back_inserter(out.ids_));
  return out;
}

MistakeSet MistakeSet::subtract(const MistakeSet& other) const {
  MistakeSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(), other.ids_.end(),
                      std::back_inserter(out.ids_));
  return out;
}

bool MistakeSet::contains(std::int64_t id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool MistakeSet::is_subset_of(const MistakeSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(), ids_.end());
}

}  // namespace twfd::qos

#include "qos/subsample.hpp"

namespace twfd::qos {

std::vector<PeriodMistakeCount> count_mistakes_by_period(
    const std::vector<MistakeRecord>& mistakes,
    const std::vector<trace::Period>& periods) {
  std::vector<PeriodMistakeCount> out;
  out.reserve(periods.size());
  for (const auto& p : periods) out.push_back({p.name, 0});
  for (const auto& m : mistakes) {
    for (std::size_t i = 0; i < periods.size(); ++i) {
      if (m.awaiting_seq >= periods[i].from_seq && m.awaiting_seq <= periods[i].to_seq) {
        ++out[i].mistakes;
        break;
      }
    }
  }
  return out;
}

}  // namespace twfd::qos

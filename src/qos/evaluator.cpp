#include "qos/evaluator.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/quantile.hpp"

namespace twfd::qos {

EvalResult evaluate(detect::FailureDetector& detector, const trace::Trace& trace,
                    const EvalOptions& options) {
  EvalResult result;
  result.metrics.detector = detector.name();
  detector.reset();

  const auto delivery = trace.delivery_order();
  if (delivery.size() < 2) return result;

  // Mistake bookkeeping. A mistake opens at an S-transition and closes at
  // the next T-transition (or the end of the observation window).
  bool in_mistake = false;
  Tick mistake_start = 0;
  std::int64_t awaiting_seq = 0;

  Tick t_begin = kTickInfinity;  // set at the first counted fresh arrival
  Tick t_end = 0;
  std::size_t fresh_count = 0;

  Tick suspect_time = 0;
  std::size_t mistakes_counted = 0;
  Tick mistake_time_counted = 0;

  double td_sum = 0.0;
  double td_max = 0.0;
  std::size_t td_samples = 0;
  P2Quantile td_p95(0.95);
  P2Quantile td_p99(0.99);

  Tick prev_arrival = kTickInfinity;

  auto close_mistake = [&](Tick end) {
    // Clamp the contribution to the observation window.
    const Tick from = std::max(mistake_start, t_begin);
    if (end > from && t_begin != kTickInfinity) {
      suspect_time += end - from;
    }
    if (mistake_start >= t_begin && t_begin != kTickInfinity) {
      ++mistakes_counted;
      mistake_time_counted += end - mistake_start;
    }
    if (options.record_mistakes) {
      result.mistakes.push_back({mistake_start, end, awaiting_seq});
    }
    in_mistake = false;
  };

  for (auto idx : delivery) {
    const auto& rec = trace[idx];
    if (rec.seq <= detector.highest_seq()) continue;  // stale: no state change
    const Tick arrival = rec.arrival_time;

    // 1) Settle the segment [prev_arrival, arrival) governed by the state
    //    the previous heartbeat left behind.
    if (prev_arrival != kTickInfinity) {
      const Tick sa = detector.suspect_after();
      if (!in_mistake && sa < arrival) {
        in_mistake = true;
        mistake_start = std::max(prev_arrival, sa);
        awaiting_seq = detector.highest_seq() + 1;
      }
    }

    // 2) Process the heartbeat.
    detector.on_heartbeat(rec.seq, rec.send_time, arrival);
    const Tick new_sa = detector.suspect_after();

    // 3) Did this heartbeat restore trust? (Algorithm 1 line 20: only if
    //    the new freshness point lies in the future.)
    if (in_mistake && new_sa > arrival) {
      close_mistake(arrival);
    }

    // 4) Detection-time sample: worst-case crash right after this send.
    ++fresh_count;
    const bool counted = fresh_count > options.skip_first;
    if (counted && t_begin == kTickInfinity) t_begin = arrival;
    if (counted && new_sa != kTickInfinity) {
      const double td =
          to_seconds(new_sa - (rec.send_time + trace.clock_skew()));
      td_sum += td;
      td_max = std::max(td_max, td);
      td_p95.add(td);
      td_p99.add(td);
      ++td_samples;
    }

    prev_arrival = arrival;
    t_end = arrival;
  }

  // The freshness point armed by the final heartbeat may already have
  // fired within the observation window.
  if (!in_mistake && prev_arrival != kTickInfinity) {
    const Tick sa = detector.suspect_after();
    if (sa < t_end) {
      in_mistake = true;
      mistake_start = std::max(prev_arrival, sa);
      awaiting_seq = detector.highest_seq() + 1;
    }
  }
  if (in_mistake) close_mistake(t_end);

  auto& m = result.metrics;
  if (t_begin == kTickInfinity || t_end <= t_begin) return result;

  const double observed = to_seconds(t_end - t_begin);
  m.observed_s = observed;
  m.detection_samples = td_samples;
  m.detection_time_s = td_samples ? td_sum / static_cast<double>(td_samples) : 0.0;
  m.detection_time_p95_s = td_samples ? td_p95.value() : 0.0;
  m.detection_time_p99_s = td_samples ? td_p99.value() : 0.0;
  m.detection_time_max_s = td_max;
  m.mistake_count = mistakes_counted;
  m.mistake_rate_per_s = static_cast<double>(mistakes_counted) / observed;
  m.query_accuracy = 1.0 - to_seconds(suspect_time) / observed;
  m.mistake_duration_s =
      mistakes_counted
          ? to_seconds(mistake_time_counted) / static_cast<double>(mistakes_counted)
          : 0.0;
  TWFD_CHECK(m.query_accuracy >= -1e-9 && m.query_accuracy <= 1.0 + 1e-9);
  m.query_accuracy = std::clamp(m.query_accuracy, 0.0, 1.0);
  return result;
}

}  // namespace twfd::qos

#include "qos/intervals.hpp"

#include <algorithm>

namespace twfd::qos {

std::vector<Interval> to_intervals(const std::vector<MistakeRecord>& records) {
  std::vector<Interval> raw;
  raw.reserve(records.size());
  for (const auto& r : records) {
    if (r.end > r.start) raw.push_back({r.start, r.end});
  }
  std::sort(raw.begin(), raw.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> out;
  for (const auto& iv : raw) {
    if (!out.empty() && iv.start <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

std::vector<Interval> intersect_intervals(const std::vector<Interval>& a,
                                          const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Tick lo = std::max(a[i].start, b[j].start);
    const Tick hi = std::min(a[i].end, b[j].end);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<Interval> unite_intervals(const std::vector<Interval>& a,
                                      const std::vector<Interval>& b) {
  std::vector<Interval> merged;
  merged.reserve(a.size() + b.size());
  merged.insert(merged.end(), a.begin(), a.end());
  merged.insert(merged.end(), b.begin(), b.end());
  std::sort(merged.begin(), merged.end(),
            [](const Interval& x, const Interval& y) { return x.start < y.start; });
  std::vector<Interval> out;
  for (const auto& iv : merged) {
    if (!out.empty() && iv.start <= out.back().end) {
      out.back().end = std::max(out.back().end, iv.end);
    } else {
      out.push_back(iv);
    }
  }
  return out;
}

Tick total_duration(const std::vector<Interval>& intervals) {
  Tick sum = 0;
  for (const auto& iv : intervals) sum += iv.duration();
  return sum;
}

bool covered_by(const std::vector<Interval>& inner,
                const std::vector<Interval>& outer) {
  return intersect_intervals(inner, outer) == inner;
}

}  // namespace twfd::qos

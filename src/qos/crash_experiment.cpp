#include "qos/crash_experiment.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/quantile.hpp"

namespace twfd::qos {

CrashExperimentResult run_crash_experiment(detect::FailureDetector& detector,
                                           const trace::Trace& trace,
                                           std::size_t crashes,
                                           std::size_t skip_first) {
  CrashExperimentResult out;
  if (trace.empty() || crashes == 0) return out;
  detector.reset();

  // One replay: per delivered heartbeat, record (seq, post-arrival
  // suspect_after). FIFO traces deliver in sequence order.
  struct State {
    std::int64_t seq;
    Tick suspect_after;
  };
  std::vector<State> states;
  states.reserve(trace.size());
  for (auto idx : trace.delivery_order()) {
    const auto& rec = trace[idx];
    if (rec.seq <= detector.highest_seq()) continue;
    detector.on_heartbeat(rec.seq, rec.send_time, rec.arrival_time);
    states.push_back({rec.seq, detector.suspect_after()});
  }
  if (states.empty()) return out;

  const std::int64_t max_seq = trace[trace.size() - 1].seq;
  const auto first_seq =
      static_cast<std::int64_t>(std::min<std::size_t>(skip_first, trace.size() - 1)) + 1;
  if (first_seq >= max_seq) return out;

  P2Quantile p99(0.99);
  double sum = 0;
  double min_td = std::numeric_limits<double>::infinity();
  double max_td = 0;
  std::size_t detected = 0;

  const double step = static_cast<double>(max_seq - first_seq) /
                      static_cast<double>(crashes);
  std::size_t cursor = 0;  // index into states, advances monotonically
  for (std::size_t c = 0; c < crashes; ++c) {
    const auto crash_seq =
        first_seq + static_cast<std::int64_t>(step * static_cast<double>(c));
    // Crash happens immediately after heartbeat `crash_seq` is sent; the
    // detector ends up in the state after the last delivered seq <= it.
    while (cursor + 1 < states.size() && states[cursor + 1].seq <= crash_seq) {
      ++cursor;
    }
    if (states[cursor].seq > crash_seq) {
      ++out.undetected;  // crash before the first delivery
      continue;
    }
    const Tick sa = states[cursor].suspect_after;
    if (sa == kTickInfinity) {
      ++out.undetected;  // detector still warming up: trusts forever
      continue;
    }
    // Send instant of the crash heartbeat, on the receiver clock (look
    // up the real record; sends need not be perfectly periodic).
    const auto& records = trace.records();
    const auto it = std::lower_bound(
        records.begin(), records.end(), crash_seq,
        [](const trace::HeartbeatRecord& r, std::int64_t s) { return r.seq < s; });
    TWFD_CHECK(it != records.end());
    const Tick crash_at = it->send_time + trace.clock_skew();
    const double td = std::max(0.0, to_seconds(sa - crash_at));
    ++detected;
    sum += td;
    min_td = std::min(min_td, td);
    max_td = std::max(max_td, td);
    p99.add(td);
  }

  out.crashes = detected + out.undetected;
  if (detected > 0) {
    out.mean_td_s = sum / static_cast<double>(detected);
    out.min_td_s = min_td;
    out.max_td_s = max_td;
    out.p99_td_s = p99.value();
  }
  return out;
}

}  // namespace twfd::qos

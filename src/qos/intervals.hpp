// Suspicion-interval algebra.
//
// The *exact* form of the paper's Eq 13 is pointwise in time: 2W-FD
// suspects at instant t iff both constituent Chen detectors suspect at t
// (its freshness point is the max of theirs, and all three share the
// largest-sequence state). Mistake-identity sets can differ at episode
// boundaries — one long 2W suspicion may span a constituent's recovery
// and re-suspicion — so the verifiable theorem is about the suspicion
// time-sets, represented here as sorted disjoint half-open intervals.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "qos/metrics.hpp"

namespace twfd::qos {

/// Half-open time interval [start, end).
struct Interval {
  Tick start = 0;
  Tick end = 0;

  friend bool operator==(const Interval&, const Interval&) = default;
  [[nodiscard]] Tick duration() const noexcept { return end - start; }
};

/// Sorted, disjoint, non-empty intervals from recorded mistakes
/// (adjacent/overlapping records are coalesced; empty ones dropped).
[[nodiscard]] std::vector<Interval> to_intervals(
    const std::vector<MistakeRecord>& records);

/// Pointwise intersection of two sorted disjoint interval lists.
[[nodiscard]] std::vector<Interval> intersect_intervals(
    const std::vector<Interval>& a, const std::vector<Interval>& b);

/// Pointwise union.
[[nodiscard]] std::vector<Interval> unite_intervals(
    const std::vector<Interval>& a, const std::vector<Interval>& b);

/// Sum of interval lengths.
[[nodiscard]] Tick total_duration(const std::vector<Interval>& intervals);

/// True if every point of `inner` lies inside `outer`.
[[nodiscard]] bool covered_by(const std::vector<Interval>& inner,
                              const std::vector<Interval>& outer);

}  // namespace twfd::qos

// Parallel replay sweeps.
//
// Figure-style evaluations replay one immutable trace through dozens of
// independent detector configurations; the replays share nothing but the
// read-only trace, so they parallelise embarrassingly. evaluate_many
// fans the specs out over a small thread pool and returns results in
// input order (deterministic regardless of scheduling).
#pragma once

#include <cstddef>
#include <vector>

#include "core/factory.hpp"
#include "qos/evaluator.hpp"
#include "trace/heartbeat.hpp"

namespace twfd::qos {

/// Replays `trace` through a detector built from each spec. `threads` = 0
/// picks std::thread::hardware_concurrency() (at least 1). Exceptions from
/// a worker are rethrown on the caller's thread.
[[nodiscard]] std::vector<EvalResult> evaluate_many(
    const std::vector<core::DetectorSpec>& specs, const trace::Trace& trace,
    const EvalOptions& options = {}, std::size_t threads = 0);

}  // namespace twfd::qos

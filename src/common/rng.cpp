#include "common/rng.hpp"

#include <cmath>

namespace twfd {

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t t = (0 - n) % n;
    while (lo < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * mul;
  have_spare_ = true;
  return u * mul;
}

double Xoshiro256::exponential(double mean) noexcept {
  return -mean * std::log(uniform01_open_left());
}

double Xoshiro256::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Xoshiro256::pareto(double xm, double alpha) noexcept {
  return xm * std::pow(uniform01_open_left(), -1.0 / alpha);
}

}  // namespace twfd

// Streaming quantile estimation (the P-square algorithm of Jain &
// Chlamtac, CACM 1985): estimates a fixed quantile of an unbounded stream
// with five markers and O(1) memory/update. Used for tail detection-time
// reporting (p95/p99) in the QoS evaluator and for trace gap analysis,
// where storing millions of samples for exact quantiles would be wasteful.
#pragma once

#include <array>
#include <cstddef>

namespace twfd {

class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact while fewer than 5 samples were seen.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  void insert_sorted(double x);

  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};         // marker heights
  std::array<double, 5> positions_{};       // actual marker positions
  std::array<double, 5> desired_{};         // desired positions
  std::array<double, 5> desired_delta_{};   // desired position increments
};

}  // namespace twfd

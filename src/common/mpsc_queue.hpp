// Lock-free bounded multi-producer / single-consumer queue.
//
// The sharded monitoring runtime marshals control-plane commands and
// handed-off datagrams onto shard worker threads with this queue: any
// thread may try_push, only the owning shard thread pops. The algorithm
// is Vyukov's bounded MPMC ring (per-cell sequence numbers; producers
// claim slots with one CAS, the single consumer needs no CAS at all), and
// the storage discipline is the same as common::RingBuffer — raw slots,
// constructed on push and destroyed on pop, so T only needs to be
// move-constructible, never default-constructible.
//
// Capacity is rounded up to a power of two. try_push fails (returns
// false) when the ring is full instead of blocking: callers decide
// whether to drop (datagram handoff — heartbeats are loss-tolerant) or
// retry (control-plane commands).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace twfd {

template <typename T>
class MpscQueue {
 public:
  /// Creates a queue holding at least `capacity` elements (rounded up to
  /// a power of two). capacity >= 1.
  explicit MpscQueue(std::size_t capacity) : cap_(round_up_pow2(capacity)) {
    TWFD_CHECK(capacity >= 1);
    cells_ = std::allocator<Cell>{}.allocate(cap_);
    for (std::size_t i = 0; i < cap_; ++i) {
      std::construct_at(&cells_[i].seq, i);
    }
  }

  ~MpscQueue() {
    // Single-threaded by the time the owner destroys the queue; drain
    // whatever the consumer never popped.
    const std::size_t tail = pop_pos_.load(std::memory_order_relaxed);
    const std::size_t head = push_pos_.load(std::memory_order_relaxed);
    for (std::size_t pos = tail; pos != head; ++pos) {
      Cell& cell = cells_[pos & (cap_ - 1)];
      if (cell.seq.load(std::memory_order_relaxed) == pos + 1) {
        std::destroy_at(value_ptr(cell));
      }
    }
    for (std::size_t i = 0; i < cap_; ++i) std::destroy_at(&cells_[i].seq);
    std::allocator<Cell>{}.deallocate(cells_, cap_);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }

  /// Appends `v`; returns false when the ring is full. Safe to call from
  /// any number of threads concurrently.
  bool try_push(T&& v) {
    std::size_t pos = push_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & (cap_ - 1)];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (push_pos_.compare_exchange_weak(pos, pos + 1,
                                            std::memory_order_relaxed)) {
          std::construct_at(value_ptr(cell), std::move(v));
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry with the new claim point.
      } else if (dif < 0) {
        return false;  // the slot cap_ behind us is still occupied: full
      } else {
        pos = push_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Pops the oldest element into `out`; returns false when empty. Must
  /// only be called from the single consumer thread.
  bool try_pop(T& out) {
    const std::size_t pos = pop_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & (cap_ - 1)];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
    if (dif < 0) return false;  // producer has not committed this slot yet
    out = std::move(*value_ptr(cell));
    std::destroy_at(value_ptr(cell));
    cell.seq.store(pos + cap_, std::memory_order_release);
    pop_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t head = push_pos_.load(std::memory_order_relaxed);
    const std::size_t tail = pop_pos_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  static T* value_ptr(Cell& cell) noexcept {
    return std::launder(reinterpret_cast<T*>(cell.storage));
  }

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Cell* cells_ = nullptr;
  std::size_t cap_ = 0;
  // Producers contend on push_pos_; keep the consumer's cursor on its own
  // cache line so pops do not bounce the producers' line.
  alignas(64) std::atomic<std::size_t> push_pos_{0};
  alignas(64) std::atomic<std::size_t> pop_pos_{0};
};

}  // namespace twfd

// Runtime abstractions the service layer is written against.
//
// The live UDP event loop (src/net) and the discrete-event simulator
// (src/sim) both implement these, so HeartbeatSender / Monitor / FdService
// run unchanged on real sockets and in deterministic virtual time — the
// simulator is how the integration tests drive the service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/time.hpp"

namespace twfd {

/// Opaque identity of a remote process (a socket address in the live
/// runtime, an endpoint handle in the simulator).
using PeerId = std::uint64_t;

/// Unreliable, unordered datagram transport (UDP semantics).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Fire-and-forget datagram send; may be silently dropped by the network.
  virtual void send(PeerId to, std::span<const std::byte> data) = 0;

  using ReceiveHandler = std::function<void(PeerId from, std::span<const std::byte>)>;

  /// Installs the single receive callback (invoked on the runtime's
  /// thread / event turn).
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// One-shot timers in the runtime's local clock domain.
class TimerService {
 public:
  virtual ~TimerService() = default;

  /// Schedules `fn` at local time `when` (fires immediately if past).
  virtual TimerId schedule_at(Tick when, std::function<void()> fn) = 0;

  /// Cancels a pending timer; cancelling a fired/unknown id is a no-op.
  virtual void cancel(TimerId id) = 0;
};

/// Bundle handed to service components.
struct Runtime {
  Clock* clock = nullptr;
  Transport* transport = nullptr;
  TimerService* timers = nullptr;
};

}  // namespace twfd

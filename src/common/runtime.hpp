// Runtime abstractions the service layer is written against.
//
// The live UDP event loop (src/net) and the discrete-event simulator
// (src/sim) both implement these, so HeartbeatSender / Monitor / FdService
// run unchanged on real sockets and in deterministic virtual time — the
// simulator is how the integration tests drive the service.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "common/time.hpp"

namespace twfd {

/// Opaque identity of a remote process (a socket address in the live
/// runtime, an endpoint handle in the simulator).
using PeerId = std::uint64_t;

/// Unreliable, unordered datagram transport (UDP semantics).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Fire-and-forget datagram send; may be silently dropped by the network.
  virtual void send(PeerId to, std::span<const std::byte> data) = 0;

  /// Fans one payload out to every peer in `to`. Implementations with a
  /// batched wire path (EventLoop via sendmmsg) override this to move the
  /// whole fan-out in O(targets / batch) syscalls; the default is a plain
  /// per-target send() loop, so every Transport supports it.
  virtual void send_many(std::span<const PeerId> to,
                         std::span<const std::byte> data) {
    for (const PeerId peer : to) send(peer, data);
  }

  /// `arrival` is the transport's best estimate of when the datagram hit
  /// this host, in the runtime's own clock domain: kernel RX timestamps
  /// when available, otherwise one clock read per receive batch. Always
  /// <= clock->now(); datagrams read off a runtime's own socket carry
  /// non-decreasing stamps (cross-shard injected ones may interleave).
  using ReceiveHandler = std::function<void(
      PeerId from, std::span<const std::byte>, Tick arrival)>;

  /// Installs the single receive callback (invoked on the runtime's
  /// thread / event turn).
  virtual void set_receive_handler(ReceiveHandler handler) = 0;
};

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// Timer-lifecycle accounting shared by every TimerService implementation
/// (see docs/runtime.md). Counters are cumulative since construction;
/// `live`, `wheel_slots_occupied` and `wheel_max_scan` are gauges.
struct TimerStats {
  std::uint64_t scheduled = 0;    ///< schedule_at calls
  std::uint64_t cancelled = 0;    ///< cancels that hit a pending timer
  std::uint64_t rescheduled = 0;  ///< reschedules that hit a pending timer
  std::uint64_t fired = 0;        ///< callbacks actually invoked
  /// Reschedules that had to re-place the record (earlier deadline, or a
  /// due-list resident) instead of the lazy deadline rewrite. Distinct
  /// from `cancelled`: no timer dies here, its placement is superseded.
  std::uint64_t superseded = 0;
  /// Records relocated to a new wheel slot while processing a reached or
  /// all-postponed slot (the wheel's cascade cost; 0 on the legacy heap).
  std::uint64_t cascades = 0;
  /// Stale-entry heap compactions (legacy heap only; 0 on the wheel).
  std::uint64_t compactions = 0;
  std::uint64_t live = 0;  ///< pending timers right now (gauge)
  /// Wheel slots currently holding at least one record (gauge).
  std::uint64_t wheel_slots_occupied = 0;
  /// Most occupancy-bitmap words touched by one earliest-slot search
  /// (gauge; high-water mark of the idle-scan cost).
  std::uint64_t wheel_max_scan = 0;
};

/// One-shot timers in the runtime's local clock domain.
class TimerService {
 public:
  virtual ~TimerService() = default;

  /// Schedules `fn` at local time `when` (fires immediately if past).
  virtual TimerId schedule_at(Tick when, std::function<void()> fn) = 0;

  /// Cancels a pending timer; cancelling a fired/unknown id is a no-op.
  virtual void cancel(TimerId id) = 0;

  /// Moves pending timer `id` to fire at `when` instead, keeping its
  /// callback. Returns false when `id` already fired / was cancelled /
  /// is unknown (or the implementation does not support rescheduling);
  /// the caller must then fall back to cancel + schedule_at. This is the
  /// hot-path primitive: re-arming a freshness timer on every heartbeat
  /// must not pay a map erase + callback reallocation per message.
  virtual bool reschedule(TimerId id, Tick when) {
    (void)id;
    (void)when;
    return false;
  }
};

/// Bundle handed to service components.
struct Runtime {
  Clock* clock = nullptr;
  Transport* transport = nullptr;
  TimerService* timers = nullptr;
};

}  // namespace twfd

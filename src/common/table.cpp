#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/assert.hpp"

namespace twfd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TWFD_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TWFD_CHECK_MSG(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string Table::sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", prec, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total + 2, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace twfd

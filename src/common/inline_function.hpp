// InlineFunction: a move-only `void()` callable with a 48-byte small-buffer
// store and no heap allocation for captures that fit.
//
// The timer hot path arms one callback per watched peer and re-arms it on
// every heartbeat; std::function's type erasure heap-allocates once the
// capture outgrows its (libstdc++: 16-byte) internal buffer, and that
// allocation is exactly what a slab-backed timer wheel is trying to keep
// off the path. Every timer callback in this codebase captures a pointer
// or two plus a couple of ids — comfortably under 48 bytes — so they all
// store inline. Larger callables still work: they fall back to a single
// heap box, so correctness never depends on the capture size.
//
// Erasure is one pointer to a static vtable (invoke / relocate / destroy).
// `relocate` is what lets records holding an InlineFunction live in a
// growing twfd::Slab: growth move-constructs the resident objects, and the
// functor moves by relocating its capture into the new buffer.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace twfd {

class InlineFunction {
 public:
  /// Captures up to this many bytes are stored in place.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &BoxedModel<D>::ops;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept { move_from(o); }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void operator()() {
    TWFD_CHECK_MSG(ops_ != nullptr, "invoking an empty InlineFunction");
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when a callable of type D stores in the inline buffer (exposed
  /// so tests can pin the no-allocation contract per capture size).
  template <typename D>
  [[nodiscard]] static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  struct InlineModel {
    static D* self(void* p) noexcept {
      return std::launder(static_cast<D*>(p));
    }
    static void invoke(void* p) { (*self(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct BoxedModel {
    static D** slot(void* p) noexcept {
      return std::launder(static_cast<D**>(p));
    }
    static void invoke(void* p) { (**slot(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(*slot(src));
    }
    static void destroy(void* p) noexcept { delete *slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void move_from(InlineFunction& o) noexcept {
    if (o.ops_ != nullptr) {
      o.ops_->relocate(buf_, o.buf_);
      ops_ = std::exchange(o.ops_, nullptr);
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace twfd

#include "common/math.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace twfd {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

// Acklam's inverse-normal-CDF rational approximation coefficients.
constexpr double kA[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                         -2.759285104469687e+02, 1.383577518672690e+02,
                         -3.066479806614716e+01, 2.506628277459239e+00};
constexpr double kB[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                         -1.556989798598866e+02, 6.680131188771972e+01,
                         -1.328068155288572e+01};
constexpr double kC[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                         -2.400758277161838e+00, -2.549732539343734e+00,
                         4.374664141464968e+00,  2.938163982698783e+00};
constexpr double kD[] = {7.784695709041462e-03, 3.224671290700398e-01,
                         2.445134137142996e+00, 3.754408661907416e+00};

double acklam(double p) {
  constexpr double p_low = 0.02425;
  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((kA[0] * r + kA[1]) * r + kA[2]) * r + kA[3]) * r + kA[4]) * r + kA[5]) * q /
        (((((kB[0] * r + kB[1]) * r + kB[2]) * r + kB[3]) * r + kB[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((kC[0] * q + kC[1]) * q + kC[2]) * q + kC[3]) * q + kC[4]) * q + kC[5]) /
        ((((kD[0] * q + kD[1]) * q + kD[2]) * q + kD[3]) * q + 1.0);
  }
  return x;
}

}  // namespace

double normal_cdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

double normal_tail(double z) { return 0.5 * std::erfc(z / kSqrt2); }

double normal_quantile(double p) {
  TWFD_CHECK_MSG(p > 0.0 && p < 1.0, "normal_quantile domain");
  double x = acklam(p);
  // One Halley refinement against the exact CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.141592653589793238) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double normal_tail_mu_sigma(double t, double mu, double sigma) {
  TWFD_CHECK_MSG(sigma > 0.0, "sigma must be positive");
  return normal_tail((t - mu) / sigma);
}

double bisect(const std::function<double(double)>& f, double lo, double hi, int iters) {
  double flo = f(lo);
  double fhi = f(hi);
  TWFD_CHECK_MSG(flo == 0.0 || fhi == 0.0 || (flo < 0) != (fhi < 0),
                 "bisect: no sign change");
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (fm == 0.0) return mid;
    if ((fm < 0) == (flo < 0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double largest_satisfying(const std::function<bool(double)>& pred, double lo,
                          double hi, int coarse_steps, int iters) {
  TWFD_CHECK(hi >= lo && coarse_steps >= 1);
  if (!pred(lo)) return lo;
  if (pred(hi)) return hi;
  // Find the last coarse point where pred holds; the boundary lies in
  // (good, bad]. pred need not be perfectly monotone (Chen's f(Delta_i) has
  // ceil() kinks), so we take the *last* satisfying coarse point.
  double good = lo;
  double bad = hi;
  const double step = (hi - lo) / static_cast<double>(coarse_steps);
  for (int i = 1; i <= coarse_steps; ++i) {
    const double x = lo + step * static_cast<double>(i);
    if (pred(x)) {
      good = x;
    }
  }
  bad = good + step > hi ? hi : good + step;
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (good + bad);
    if (pred(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace twfd

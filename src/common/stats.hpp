// Streaming statistics.
//
// RunningStats: Welford's algorithm over an unbounded stream (used for
// trace statistics and the V(D) estimator of Section V-A1).
// WindowedStats: mean/variance over the last n samples with O(1) update
// (used by the phi-accrual and ED detectors' sampling windows).
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

#include "common/ring_buffer.hpp"

namespace twfd {

/// Welford mean/variance plus min/max over an unbounded stream.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (divides by n); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  /// Unbiased sample variance (divides by n-1).
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Mean and variance over the most recent `capacity` samples.
///
/// Maintains running sum and sum-of-squares; push is O(1). Sums are kept in
/// double — with windows of <= 10^4 samples and values around 10^9 ns the
/// relative error stays far below the jitter the estimators measure. Values
/// can optionally be offset-shifted by the caller to improve conditioning.
class WindowedStats {
 public:
  explicit WindowedStats(std::size_t capacity) : win_(capacity) {}

  void add(double x) {
    double evicted = 0.0;
    if (win_.push_evict(x, evicted)) {
      sum_ -= evicted;
      sumsq_ -= evicted * evicted;
    }
    sum_ += x;
    sumsq_ += x * x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return win_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return win_.capacity(); }
  [[nodiscard]] bool full() const noexcept { return win_.full(); }

  [[nodiscard]] double mean() const noexcept {
    return win_.empty() ? 0.0 : sum_ / static_cast<double>(win_.size());
  }

  /// Population variance over the window; clamped at 0 against rounding.
  [[nodiscard]] double variance() const noexcept {
    if (win_.size() < 2) return 0.0;
    const double n = static_cast<double>(win_.size());
    const double m = sum_ / n;
    const double v = sumsq_ / n - m * m;
    return v > 0.0 ? v : 0.0;
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void clear() noexcept {
    win_.clear();
    sum_ = 0.0;
    sumsq_ = 0.0;
  }

 private:
  RingBuffer<double> win_;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

}  // namespace twfd

// Deterministic random number generation.
//
// The trace generators must produce bit-identical traces for a given seed on
// every platform, so we implement the engine (xoshiro256++) and the
// variate transforms ourselves instead of relying on libstdc++'s
// distribution objects, whose algorithms are unspecified.
#pragma once

#include <cstdint>

namespace twfd {

/// SplitMix64 — used to expand a single seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Fast, 256-bit state, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x2b7e151628aed2a6ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform01_open_left() noexcept { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Standard normal via the polar (Marsaglia) method; deterministic.
  double normal() noexcept;

  /// Normal(mu, sigma).
  double normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean) noexcept;

  /// Lognormal where the *underlying* normal has parameters (mu, sigma).
  double lognormal(double mu, double sigma) noexcept;

  /// Pareto (Lomax-free classic form): xm * U^(-1/alpha), support [xm, inf).
  double pareto(double xm, double alpha) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  // Polar method produces pairs; cache the spare.
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace twfd

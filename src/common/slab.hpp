// Slab: a contiguous, cache-line-aligned object pool with generation-
// stamped handles and O(1) free-list reuse (the daemonproxy fixed-pool
// idiom, templated).
//
// Slots live in ONE allocation; iteration visits live slots in slot-index
// order, i.e. in memory order — the traversal the per-shard hot paths
// want, instead of chasing std::map nodes scattered over the heap. Each
// slot carries a generation counter (odd = live, even = free); a
// SlabHandle is (slot, generation), so a handle kept across an erase can
// never alias the slot's next tenant: get() returns nullptr for it.
//
// Two erase policies:
//   SlabPolicy::kDestroy — erase() destroys the object (plain pool).
//   SlabPolicy::kRecycle — erase() calls T::park() and keeps the object
//     constructed in the freed slot; the next emplace() on that slot
//     calls T::reuse(args...) instead of a constructor. This is what
//     makes admission/eviction allocation-free after warm-up when T owns
//     heavy internal buffers (detector windows, sample rings): park()
//     releases semantic resources but keeps capacity, reuse() re-labels
//     the object. Parked objects are destroyed by clear()/destruction.
//
// The slab may grow (2x, single allocation); growth move-constructs the
// resident objects, so pointers into the slab are invalidated by
// emplace() — hold SlabHandles across calls that can admit, not T*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace twfd {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Generation-stamped reference to a slab slot. Value-type, trivially
/// copyable; default-constructed handles are invalid.
struct SlabHandle {
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  std::uint32_t slot = kNpos;
  std::uint32_t generation = 0;

  [[nodiscard]] constexpr bool valid() const noexcept { return slot != kNpos; }
  friend constexpr bool operator==(SlabHandle, SlabHandle) noexcept = default;
};

enum class SlabPolicy {
  kDestroy,  ///< erase() runs ~T(); emplace() always placement-news.
  kRecycle,  ///< erase() parks T in place; emplace() reuses it. See above.
};

template <typename T, SlabPolicy Policy = SlabPolicy::kDestroy>
class Slab {
  static_assert(std::is_move_constructible_v<T>,
                "slab growth relocates resident objects");

 public:
  Slab() = default;
  explicit Slab(std::size_t initial_capacity) { reserve(initial_capacity); }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  Slab(Slab&& o) noexcept
      : slots_(std::exchange(o.slots_, nullptr)),
        capacity_(std::exchange(o.capacity_, 0)),
        used_(std::exchange(o.used_, 0)),
        size_(std::exchange(o.size_, 0)),
        free_head_(std::exchange(o.free_head_, SlabHandle::kNpos)) {}

  Slab& operator=(Slab&& o) noexcept {
    if (this != &o) {
      release();
      slots_ = std::exchange(o.slots_, nullptr);
      capacity_ = std::exchange(o.capacity_, 0);
      used_ = std::exchange(o.used_, 0);
      size_ = std::exchange(o.size_, 0);
      free_head_ = std::exchange(o.free_head_, SlabHandle::kNpos);
    }
    return *this;
  }

  ~Slab() { release(); }

  /// Number of live objects.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Slots allocated (live + free).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// High-water slot count: slots ever handed out (free-list reuse keeps
  /// this flat under churn — the admission-is-O(1) invariant in a number).
  [[nodiscard]] std::size_t high_water() const noexcept { return used_; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  /// Admits an object: pops the free list (O(1), allocation-free) or
  /// claims the next fresh slot, growing the slab only when every slot is
  /// in use. Under kRecycle a popped slot still holding a parked object
  /// gets `parked.reuse(args...)`; otherwise T is constructed in place.
  template <typename... Args>
  SlabHandle emplace(Args&&... args) {
    std::uint32_t idx;
    if (free_head_ != SlabHandle::kNpos) {
      idx = free_head_;
      free_head_ = slots_[idx].next_free;
    } else {
      if (used_ == capacity_) grow(capacity_ < 8 ? 16 : capacity_ * 2);
      idx = used_++;
    }
    Slot& s = slots_[idx];
    if constexpr (Policy == SlabPolicy::kRecycle) {
      if (s.constructed) {
        s.object()->reuse(std::forward<Args>(args)...);
      } else {
        ::new (s.storage) T(std::forward<Args>(args)...);
        s.constructed = true;
      }
    } else {
      ::new (s.storage) T(std::forward<Args>(args)...);
      s.constructed = true;
    }
    ++s.generation;  // even -> odd: live
    ++size_;
    return {idx, s.generation};
  }

  /// Frees a slot (O(1)). Returns false for a stale/invalid handle. The
  /// slot's generation advances, so every outstanding handle to it dies.
  bool erase(SlabHandle h) {
    Slot* s = slot_for(h);
    if (s == nullptr) return false;
    if constexpr (Policy == SlabPolicy::kRecycle) {
      s->object()->park();
    } else {
      s->object()->~T();
      s->constructed = false;
    }
    ++s->generation;  // odd -> even: free
    s->next_free = free_head_;
    free_head_ = h.slot;
    --size_;
    return true;
  }

  /// Live object for `h`, or nullptr when the handle is stale (the slot
  /// was erased — and possibly re-used — since the handle was minted).
  [[nodiscard]] T* get(SlabHandle h) noexcept {
    Slot* s = slot_for(h);
    return s == nullptr ? nullptr : s->object();
  }
  [[nodiscard]] const T* get(SlabHandle h) const noexcept {
    return const_cast<Slab*>(this)->get(h);
  }

  /// Visits every live object in slot order — a linear sweep of the
  /// backing memory. `fn(SlabHandle, T&)`.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = 0; i < used_; ++i) {
      Slot& s = slots_[i];
      if (s.generation & 1u) fn(SlabHandle{i, s.generation}, *s.object());
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = 0; i < used_; ++i) {
      const Slot& s = slots_[i];
      if (s.generation & 1u) fn(SlabHandle{i, s.generation}, *s.object());
    }
  }

  /// Destroys every object — live and (under kRecycle) parked — and
  /// resets the slab to empty. Keeps the allocation; generations are
  /// preserved, so pre-clear handles stay invalid forever.
  void clear() {
    for (std::uint32_t i = 0; i < used_; ++i) {
      Slot& s = slots_[i];
      if (s.generation & 1u) ++s.generation;
      if (s.constructed) {
        s.object()->~T();
        s.constructed = false;
      }
    }
    used_ = 0;
    size_ = 0;
    free_head_ = SlabHandle::kNpos;
  }

 private:
  // One cache line (or more, for large T) per slot: the object starts at
  // the line boundary, the bookkeeping rides in its tail padding when it
  // fits. Two shard-hot neighbours never false-share a line.
  struct alignas(kCacheLineBytes) Slot {
    alignas(alignof(T)) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 0;  // odd = live, even = free
    std::uint32_t next_free = SlabHandle::kNpos;
    bool constructed = false;

    [[nodiscard]] T* object() noexcept {
      return std::launder(reinterpret_cast<T*>(storage));
    }
    [[nodiscard]] const T* object() const noexcept {
      return std::launder(reinterpret_cast<const T*>(storage));
    }
  };
  static_assert(alignof(Slot) >= kCacheLineBytes);

  [[nodiscard]] Slot* slot_for(SlabHandle h) noexcept {
    if (h.slot >= used_) return nullptr;
    Slot& s = slots_[h.slot];
    if (s.generation != h.generation || (h.generation & 1u) == 0) return nullptr;
    return &s;
  }

  void grow(std::size_t new_capacity) {
    TWFD_CHECK(new_capacity > capacity_);
    auto* fresh = static_cast<Slot*>(::operator new(
        new_capacity * sizeof(Slot), std::align_val_t{alignof(Slot)}));
    for (std::uint32_t i = 0; i < used_; ++i) {
      Slot& old = slots_[i];
      Slot& neo = fresh[i];
      neo.generation = old.generation;
      neo.next_free = old.next_free;
      neo.constructed = old.constructed;
      if (old.constructed) {
        ::new (neo.storage) T(std::move(*old.object()));
        old.object()->~T();
      }
    }
    for (std::size_t i = used_; i < new_capacity; ++i) {
      fresh[i].generation = 0;
      fresh[i].next_free = SlabHandle::kNpos;
      fresh[i].constructed = false;
    }
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(Slot)});
    }
    slots_ = fresh;
    capacity_ = static_cast<std::uint32_t>(new_capacity);
  }

  void release() {
    if (slots_ == nullptr) return;
    for (std::uint32_t i = 0; i < used_; ++i) {
      if (slots_[i].constructed) slots_[i].object()->~T();
    }
    ::operator delete(slots_, std::align_val_t{alignof(Slot)});
    slots_ = nullptr;
    capacity_ = used_ = 0;
    size_ = 0;
    free_head_ = SlabHandle::kNpos;
  }

  Slot* slots_ = nullptr;
  std::uint32_t capacity_ = 0;
  std::uint32_t used_ = 0;  // high-water mark: slots ever handed out
  std::uint32_t size_ = 0;  // live objects
  std::uint32_t free_head_ = SlabHandle::kNpos;
};

}  // namespace twfd

// Fixed-width console tables and CSV emission for the benchmark harness.
//
// Every bench binary prints the paper's rows/series with this printer so
// output across experiments stays uniform and greppable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace twfd {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `prec` digits after the decimal point.
  static std::string num(double v, int prec = 4);
  /// Scientific notation, for log-scale quantities such as mistake rates.
  static std::string sci(double v, int prec = 3);

  /// Pretty fixed-width rendering with a header rule.
  void print(std::ostream& os) const;
  /// Machine-readable CSV rendering.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  // Raw access for non-textual renderers (e.g. the bench JSON emitter).
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace twfd

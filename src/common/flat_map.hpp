// FlatMap64: open-addressing hash map from uint64 keys to small values.
//
// The slab peer table's index: PeerId -> SlabHandle and SubscriptionId ->
// PeerId lookups sit on the heartbeat hot path, where a std::map costs a
// pointer chase per tree level. This map probes linearly through three
// parallel flat arrays (1-byte states, keys, values) — the probe touches
// only states+keys, one or two cache lines for the common hit — and
// performs ZERO allocations on find, insert (below the load limit) and
// erase. Erase leaves a tombstone; the table rehashes growing to keep
// load below 1/2 of capacity (tombstones included below 7/8) on insert.
// Erase additionally compacts IN PLACE (same-size rehash) once
// tombstones exceed 3/8 of capacity: an erase-heavy churn phase with no
// interleaved inserts would otherwise stretch every miss probe toward a
// full-table scan, because probes only stop at never-used buckets.
// Lookups still never write.
//
// Keys are mixed through the splitmix64 finalizer, so sequential ids
// (subscription counters, sim peer handles) spread uniformly. Any uint64
// key value is legal, including 0 and ~0 — liveness lives in the state
// byte, not in reserved key values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace twfd {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;
  explicit FlatMap64(std::size_t expected) { reserve(expected); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return states_.size(); }
  /// Tombstoned buckets awaiting compaction (observability/test seam).
  [[nodiscard]] std::size_t tombstones() const noexcept { return used_ - size_; }

  /// Ensures `n` entries fit without a rehash-on-insert.
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want < n * 2) want *= 2;
    if (want > states_.size()) rehash(want);
  }

  [[nodiscard]] V* find(std::uint64_t key) noexcept {
    if (states_.empty()) return nullptr;
    const std::size_t mask = states_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kEmpty) return nullptr;
      if (st == kFull && keys_[i] == key) return &values_[i];
      i = (i + 1) & mask;
    }
  }
  [[nodiscard]] const V* find(std::uint64_t key) const noexcept {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Inserts or overwrites; returns the stored value.
  V& insert_or_assign(std::uint64_t key, V value) {
    auto [v, inserted] = try_emplace(key, std::move(value));
    if (!inserted) *v = std::move(value);
    return *v;
  }

  /// Inserts `V(args...)` unless `key` is present. Returns {value,
  /// inserted}; never invalidates other entries' contents (the arrays may
  /// move on rehash — pointers are invalidated, keys/values are not).
  template <typename... Args>
  std::pair<V*, bool> try_emplace(std::uint64_t key, Args&&... args) {
    if (states_.empty() || (used_ + 1) * 8 > states_.size() * 7) {
      rehash(states_.empty() ? 16
                             : (size_ + 1) * 4 > states_.size()
                                   ? states_.size() * 2
                                   : states_.size());  // same size: drop tombstones
    }
    const std::size_t mask = states_.size() - 1;
    std::size_t i = mix(key) & mask;
    std::size_t grave = kNpos;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kFull && keys_[i] == key) return {&values_[i], false};
      if (st == kTombstone && grave == kNpos) grave = i;
      if (st == kEmpty) {
        if (grave != kNpos) {
          i = grave;  // recycle the tombstone closest to the home bucket
        } else {
          ++used_;
        }
        states_[i] = kFull;
        keys_[i] = key;
        values_[i] = V(std::forward<Args>(args)...);
        ++size_;
        return {&values_[i], true};
      }
      i = (i + 1) & mask;
    }
  }

  /// Removes `key` (tombstoned; O(1) amortised). False if absent. Once
  /// tombstones pass 3/8 of capacity the table compacts in place — a
  /// same-size rehash, the one erase that is not allocation-free — so
  /// miss probes stay short under sustained delete-only churn.
  bool erase(std::uint64_t key) {
    if (states_.empty()) return false;
    const std::size_t mask = states_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (true) {
      const std::uint8_t st = states_[i];
      if (st == kEmpty) return false;
      if (st == kFull && keys_[i] == key) {
        states_[i] = kTombstone;
        values_[i] = V{};
        --size_;
        if (tombstones() * 8 >= states_.size() * 3) rehash(states_.size());
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  /// `fn(key, V&)` over every entry, in table order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) fn(keys_[i], values_[i]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) fn(keys_[i], values_[i]);
    }
  }

  void clear() noexcept {
    std::fill(states_.begin(), states_.end(), kEmpty);
    size_ = 0;
    used_ = 0;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t new_buckets) {
    TWFD_CHECK((new_buckets & (new_buckets - 1)) == 0 && new_buckets >= 16);
    std::vector<std::uint8_t> old_states = std::move(states_);
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<V> old_values = std::move(values_);
    states_.assign(new_buckets, kEmpty);
    keys_.assign(new_buckets, 0);
    values_.assign(new_buckets, V{});
    const std::size_t mask = new_buckets - 1;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t j = mix(old_keys[i]) & mask;
      while (states_[j] == kFull) j = (j + 1) & mask;
      states_[j] = kFull;
      keys_[j] = old_keys[i];
      values_[j] = std::move(old_values[i]);
    }
    used_ = size_;
  }

  std::vector<std::uint8_t> states_;
  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::size_t size_ = 0;  // kFull buckets
  std::size_t used_ = 0;  // kFull + kTombstone buckets
};

}  // namespace twfd

// Always-on precondition checks.
//
// Failure-detector state machines are cheap relative to I/O, so invariant
// checks stay enabled in release builds; violations throw so tests can
// assert on them and live services can contain the blast radius.
#pragma once

#include <stdexcept>
#include <string>

namespace twfd::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  throw std::logic_error(std::string("TWFD_CHECK failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

}  // namespace twfd::detail

#define TWFD_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::twfd::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define TWFD_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) ::twfd::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace twfd {

std::string format_ticks(Tick t) {
  if (t == kTickInfinity) return "inf";
  if (t == kTickNegInfinity) return "-inf";
  char buf[64];
  const double abs_ns = std::fabs(static_cast<double>(t));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(t));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(t) * 1e-3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(t) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(t) * 1e-9);
  }
  return buf;
}

}  // namespace twfd

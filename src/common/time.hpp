// Tick-based time for the 2W-FD library.
//
// All simulation-domain timestamps and durations are signed 64-bit
// nanosecond counts ("ticks"). Using an integer domain keeps trace replay
// and the discrete-event simulator bit-exact across platforms, which the
// property tests rely on. The real-time runtime (src/net) maps
// std::chrono::steady_clock onto the same representation.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace twfd {

/// A point in time or a duration, in nanoseconds.
using Tick = std::int64_t;

/// Sentinel for "never" / unbounded timeout.
inline constexpr Tick kTickInfinity = std::numeric_limits<Tick>::max();

/// Sentinel for "before any representable time".
inline constexpr Tick kTickNegInfinity = std::numeric_limits<Tick>::min();

constexpr Tick ticks_from_ns(std::int64_t ns) noexcept { return ns; }
constexpr Tick ticks_from_us(std::int64_t us) noexcept { return us * 1'000; }
constexpr Tick ticks_from_ms(std::int64_t ms) noexcept { return ms * 1'000'000; }
constexpr Tick ticks_from_sec(std::int64_t s) noexcept { return s * 1'000'000'000; }

/// Converts a floating-point second count to ticks (round to nearest).
constexpr Tick ticks_from_seconds(double seconds) noexcept {
  const double ns = seconds * 1e9;
  return static_cast<Tick>(ns >= 0 ? ns + 0.5 : ns - 0.5);
}

constexpr double to_seconds(Tick t) noexcept { return static_cast<double>(t) * 1e-9; }
constexpr double to_millis(Tick t) noexcept { return static_cast<double>(t) * 1e-6; }
constexpr double to_micros(Tick t) noexcept { return static_cast<double>(t) * 1e-3; }

/// Saturating addition: adding anything to infinity stays infinity.
constexpr Tick tick_add_sat(Tick a, Tick b) noexcept {
  if (a == kTickInfinity || b == kTickInfinity) return kTickInfinity;
  if (a > 0 && b > std::numeric_limits<Tick>::max() - a) return kTickInfinity;
  if (a < 0 && b < std::numeric_limits<Tick>::min() - a) return kTickNegInfinity;
  return a + b;
}

/// Human-readable rendering, e.g. "215.000ms", "1.500s", "inf".
std::string format_ticks(Tick t);

/// Abstract monotonic clock. Implemented by the real event loop
/// (steady_clock) and by sim::SimClock (virtual time, optional skew/drift).
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in ticks. Monotone non-decreasing.
  [[nodiscard]] virtual Tick now() const = 0;
};

/// Wall-clock backed implementation used by the live runtime.
class SteadyClock final : public Clock {
 public:
  [[nodiscard]] Tick now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace twfd

// Numerics used by the accrual detectors and the Chen configuration
// procedure: normal CDF / tail / quantile, and a robust scalar root finder.
#pragma once

#include <functional>

namespace twfd {

/// Standard normal cumulative distribution function Phi(z).
double normal_cdf(double z);

/// Upper tail Q(z) = 1 - Phi(z), computed via erfc for accuracy at large z.
double normal_tail(double z);

/// Inverse of normal_cdf (the probit function). `p` must lie in (0, 1).
/// Uses Acklam's rational approximation refined with one Halley step,
/// accurate to ~1e-15 over the full domain.
double normal_quantile(double p);

/// P[X > t] for X ~ Normal(mu, sigma^2); sigma must be > 0.
double normal_tail_mu_sigma(double t, double mu, double sigma);

/// Finds x in [lo, hi] with f(x) ~ 0 by bisection; f(lo) and f(hi) must have
/// opposite signs. Returns the midpoint after `iters` halvings.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              int iters = 100);

/// Largest x in [lo, hi] such that pred(x) holds, assuming pred is
/// "downward closed" on a prefix (true on [lo, x*], false after). Scans
/// `coarse_steps` points to bracket the boundary, then bisects. Returns lo
/// if pred(lo) is false.
double largest_satisfying(const std::function<bool(double)>& pred, double lo,
                          double hi, int coarse_steps = 200, int iters = 60);

}  // namespace twfd

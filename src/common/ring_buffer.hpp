// Fixed-capacity circular buffer.
//
// The sliding-window arrival estimators (Chen Eq 2, Bertier, phi-accrual)
// all keep "the last n samples"; this container backs them with one
// allocation at construction and O(1) push/evict.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"

namespace twfd {

template <typename T>
class RingBuffer {
 public:
  /// Creates a buffer holding at most `capacity` elements. capacity >= 1.
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    TWFD_CHECK(capacity >= 1);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  /// Appends `v`. If full, evicts and returns the oldest element.
  /// Returns true in `evicted_out` cases via the overload below.
  void push(const T& v) {
    T dummy{};
    (void)push_evict(v, dummy);
  }

  /// Appends `v`; when eviction happens, stores the evicted value in
  /// `evicted` and returns true.
  bool push_evict(const T& v, T& evicted) {
    if (full()) {
      evicted = buf_[head_];
      buf_[head_] = v;
      head_ = next(head_);
      return true;
    }
    buf_[(head_ + size_) % buf_.size()] = v;
    ++size_;
    return false;
  }

  /// Element `i` positions from the oldest (0 = oldest).
  [[nodiscard]] const T& oldest(std::size_t i = 0) const {
    TWFD_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Element `i` positions back from the newest (0 = newest).
  [[nodiscard]] const T& newest(std::size_t i = 0) const {
    TWFD_CHECK(i < size_);
    return buf_[(head_ + size_ - 1 - i) % buf_.size()];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) % buf_.size();
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace twfd

// Fixed-capacity circular buffer.
//
// The sliding-window arrival estimators (Chen Eq 2, Bertier, phi-accrual)
// all keep "the last n samples"; this container backs them with one
// allocation at construction and O(1) push/evict.
//
// Storage is raw memory: slots are constructed on first write and
// destroyed on clear/destruction, so T only needs to be copy-constructible
// and copy-assignable — never default-constructible.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "common/assert.hpp"

namespace twfd {

template <typename T>
class RingBuffer {
 public:
  /// Creates a buffer holding at most `capacity` elements. capacity >= 1.
  explicit RingBuffer(std::size_t capacity) : cap_(capacity) {
    TWFD_CHECK(capacity >= 1);
    buf_ = std::allocator<T>{}.allocate(cap_);
  }

  ~RingBuffer() {
    if (buf_ == nullptr) return;  // moved-from
    destroy_all();
    std::allocator<T>{}.deallocate(buf_, cap_);
  }

  RingBuffer(const RingBuffer& other) : cap_(other.cap_) {
    buf_ = std::allocator<T>{}.allocate(cap_);
    try {
      for (; size_ < other.size_; ++size_) {
        std::construct_at(buf_ + size_, other.oldest(size_));
      }
    } catch (...) {
      destroy_all();
      std::allocator<T>{}.deallocate(buf_, cap_);
      throw;
    }
  }

  RingBuffer& operator=(const RingBuffer& other) {
    if (this == &other) return *this;
    RingBuffer tmp(other);
    swap(tmp);
    return *this;
  }

  RingBuffer(RingBuffer&& other) noexcept
      : buf_(std::exchange(other.buf_, nullptr)),
        cap_(std::exchange(other.cap_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      if (buf_ != nullptr) {
        destroy_all();
        std::allocator<T>{}.deallocate(buf_, cap_);
      }
      buf_ = std::exchange(other.buf_, nullptr);
      cap_ = std::exchange(other.cap_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == cap_; }

  /// Appends `v`; if full, the oldest element is overwritten in place.
  void push(const T& v) {
    if (full()) {
      buf_[head_] = v;
      head_ = next(head_);
      return;
    }
    std::construct_at(buf_ + (head_ + size_) % cap_, v);
    ++size_;
  }

  /// Appends `v`; when eviction happens, stores the evicted value in
  /// `evicted` and returns true.
  bool push_evict(const T& v, T& evicted) {
    if (full()) {
      evicted = std::move(buf_[head_]);
      buf_[head_] = v;
      head_ = next(head_);
      return true;
    }
    std::construct_at(buf_ + (head_ + size_) % cap_, v);
    ++size_;
    return false;
  }

  /// Element `i` positions from the oldest (0 = oldest).
  [[nodiscard]] const T& oldest(std::size_t i = 0) const {
    TWFD_CHECK(i < size_);
    return buf_[(head_ + i) % cap_];
  }

  /// Element `i` positions back from the newest (0 = newest).
  [[nodiscard]] const T& newest(std::size_t i = 0) const {
    TWFD_CHECK(i < size_);
    return buf_[(head_ + size_ - 1 - i) % cap_];
  }

  void clear() noexcept {
    destroy_all();
    head_ = 0;
    size_ = 0;
  }

  void swap(RingBuffer& other) noexcept {
    std::swap(buf_, other.buf_);
    std::swap(cap_, other.cap_);
    std::swap(head_, other.head_);
    std::swap(size_, other.size_);
  }

 private:
  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) % cap_;
  }

  void destroy_all() noexcept {
    for (std::size_t i = 0; i < size_; ++i) {
      std::destroy_at(buf_ + (head_ + i) % cap_);
    }
  }

  T* buf_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;  // index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace twfd

#include "common/quantile.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace twfd {

P2Quantile::P2Quantile(double q) : q_(q) {
  TWFD_CHECK_MSG(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
  desired_delta_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::insert_sorted(double x) {
  heights_[count_] = x;
  ++count_;
  std::sort(heights_.begin(), heights_.begin() + count_);
  if (count_ == 5) {
    for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
  }
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    insert_sorted(x);
    return;
  }

  // Locate the cell containing x; clamp the extremes.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_delta_[i];
  ++count_;

  // Adjust the three middle markers with the piecewise-parabolic formula,
  // falling back to linear moves when parabolic would disorder markers.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const bool move_right = d >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = d <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) continue;
    const double s = move_right ? 1.0 : -1.0;

    const double hp = heights_[i + 1];
    const double hm = heights_[i - 1];
    const double h = heights_[i];
    const double np = positions_[i + 1];
    const double nm = positions_[i - 1];
    const double n = positions_[i];

    double candidate =
        h + s / (np - nm) *
                ((n - nm + s) * (hp - h) / (np - n) + (np - n - s) * (h - hm) / (n - nm));
    if (candidate <= hm || candidate >= hp) {
      // Linear fallback toward the neighbour in the move direction.
      const double hn = s > 0 ? hp : hm;
      const double nn = s > 0 ? np : nm;
      candidate = h + s * (hn - h) / (nn - n);
    }
    heights_[i] = candidate;
    positions_[i] += s;
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile (nearest-rank).
    const auto idx = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_))) - 1;
    return heights_[std::min(idx, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace twfd

#include "config/qos_config.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/math.hpp"

namespace twfd::config {
namespace {

void validate(const QosRequirements& qos, const NetworkBehaviour& net) {
  TWFD_CHECK_MSG(qos.td_upper_s > 0, "T_D^U must be positive");
  TWFD_CHECK_MSG(qos.tmr_upper_per_s > 0, "T_MR^U must be positive");
  TWFD_CHECK_MSG(qos.tm_upper_s > 0, "T_M^U must be positive");
  TWFD_CHECK_MSG(net.loss_probability >= 0 && net.loss_probability < 1,
                 "p_L must be in [0,1)");
  TWFD_CHECK_MSG(net.delay_variance_s2 >= 0, "V(D) must be non-negative");
}

}  // namespace

double estimated_mistake_rate(double interval_s, double td_upper_s,
                              const NetworkBehaviour& net) {
  TWFD_CHECK(interval_s > 0 && td_upper_s > 0);
  const double v = std::max(net.delay_variance_s2, 1e-18);
  const double pl = net.loss_probability;
  // A mistake at freshness point tau_{l+1} happens iff NO heartbeat with
  // sequence > l arrives in time. Heartbeat m_{l+j} (j >= 1) leaves
  // j * Delta_i after m_l and has T_D^U - j * Delta_i of budget left;
  // its miss probability is bounded by
  //   p_L + (1 - p_L) * Cantelli(T_D^U - j * Delta_i),
  // and heartbeats sent past the deadline (slack <= 0) cannot help.
  double prob = 1.0;
  bool any_term = false;
  for (double slack = td_upper_s - interval_s; slack > 0.0; slack -= interval_s) {
    any_term = true;
    const double tail = v / (v + slack * slack);
    prob *= pl + (1.0 - pl) * tail;
    if (prob < 1e-300) return 0.0;
  }
  if (!any_term) prob = 1.0;  // Delta_i >= T_D^U: every freshness point misses
  // One detection opportunity per heartbeat interval.
  return prob / interval_s;
}

FdConfig chen_configure(const QosRequirements& qos, const NetworkBehaviour& net) {
  validate(qos, net);
  FdConfig out;

  // Step 1 (Eq 14-15): bound Delta_i so the expected mistake duration —
  // the wait for the next heartbeat that arrives within T_M^U — stays
  // under T_M^U. gamma' is the Cantelli-bound probability that any given
  // heartbeat arrives within T_M^U.
  const double tm2 = qos.tm_upper_s * qos.tm_upper_s;
  const double gamma_prime =
      (1.0 - net.loss_probability) * tm2 / (net.delay_variance_s2 + tm2);
  const double di_max =
      std::min(gamma_prime * qos.tm_upper_s, qos.td_upper_s);
  if (di_max <= 0.0) return out;  // infeasible

  // Step 2 (Eq 16): largest Delta_i <= di_max with estimated mistake rate
  // within T_MR^U. The rate vanishes as Delta_i -> 0 (more heartbeats get
  // a chance to beat each deadline), so search downward from di_max.
  const auto ok = [&](double di) {
    return estimated_mistake_rate(di, qos.td_upper_s, net) <= qos.tmr_upper_per_s;
  };

  double lo = di_max / 4096.0;
  // Make sure the lower end of the bracket is feasible; extend a few
  // decades if the requirement is extreme.
  for (int i = 0; i < 8 && !ok(lo); ++i) lo /= 16.0;
  if (!ok(lo)) return out;  // infeasible under this network behaviour

  const double di =
      ok(di_max) ? di_max : largest_satisfying(ok, lo, di_max, 400, 60);

  // Step 3.
  out.feasible = true;
  out.interval_s = di;
  out.margin_s = qos.td_upper_s - di;
  out.predicted_mistake_rate_per_s = estimated_mistake_rate(di, qos.td_upper_s, net);
  return out;
}

PredictedQos predict_qos(double interval_s, double margin_s,
                         const NetworkBehaviour& net) {
  TWFD_CHECK(interval_s > 0 && margin_s >= 0);
  PredictedQos out;
  out.td_upper_s = interval_s + margin_s;
  out.tmr_upper_per_s = estimated_mistake_rate(interval_s, out.td_upper_s, net);

  // A mistake ends when a heartbeat arrives within the margin of its
  // freshness point. Cantelli bound on that per-heartbeat probability
  // (zero margin still succeeds whenever the heartbeat is merely on
  // time, so floor the success probability at (1 - p_L)/2).
  const double v = std::max(net.delay_variance_s2, 1e-18);
  const double m2 = margin_s * margin_s;
  const double per_beat =
      (1.0 - net.loss_probability) * std::max(0.5, m2 / (v + m2));
  out.tm_upper_s = interval_s / per_beat;

  out.pa_lower = std::max(0.0, 1.0 - out.tmr_upper_per_s * out.tm_upper_s);
  return out;
}

CombinedConfig combine_requirements(std::span<const AppRequest> apps,
                                    const NetworkBehaviour& net) {
  TWFD_CHECK_MSG(!apps.empty(), "no applications to combine");
  CombinedConfig out;

  // Step 1: dedicated configuration per application.
  double di_min = 1e300;
  double dedicated_load = 0.0;
  for (const auto& app : apps) {
    AppAssignment a;
    a.name = app.name;
    a.dedicated = chen_configure(app.qos, net);
    if (!a.dedicated.feasible) {
      out.apps.push_back(std::move(a));
      return out;  // feasible stays false
    }
    dedicated_load += 1.0 / a.dedicated.interval_s;
    di_min = std::min(di_min, a.dedicated.interval_s);
    out.apps.push_back(std::move(a));
  }

  // Step 2: the host sends at the fastest requested rate.
  out.shared_interval_s = di_min;

  // Step 3: each app keeps its detection time exactly:
  // Delta_to,j = T_D,j^U - Delta_i,min. Apps whose dedicated interval was
  // larger than Delta_i,min gain margin, which can only reduce their
  // mistake rate and duration (Figures 11-12).
  for (std::size_t i = 0; i < apps.size(); ++i) {
    out.apps[i].shared_margin_s = apps[i].qos.td_upper_s - di_min;
    TWFD_CHECK(out.apps[i].shared_margin_s >= out.apps[i].dedicated.margin_s - 1e-12 ||
               std::abs(out.apps[i].dedicated.interval_s - di_min) < 1e-12);
  }

  out.feasible = true;
  out.dedicated_msgs_per_s = dedicated_load;
  out.shared_msgs_per_s = 1.0 / di_min;
  return out;
}

}  // namespace twfd::config

// Configuring a failure detector to satisfy a QoS specification
// (Section V-A, after Chen et al., "On the Quality of Service of Failure
// Detectors", IEEE Trans. Computers 2002).
//
// Applications express requirements as a tuple (T_D^U, T_MR^U, T_M^U):
// an upper bound on detection time, on mistake rate, and on mistake
// duration. Given the probabilistic network behaviour (loss probability
// p_L and delay variance V(D)), the procedure outputs the largest
// heartbeat interval Delta_i — to minimise network load — and the timeout
// margin Delta_to = T_D^U - Delta_i that meet the requirements.
//
// NOTE: Equations 14-16 are typographically corrupted in the extended
// abstract; this implementation reconstructs them from the cited source
// (the abstract defers the derivation to [3]). The mistake-rate estimate
// uses the one-sided Chebyshev (Cantelli) tail bound
//   P[D > t] <= V(D) / (V(D) + t^2)
// so the probability that heartbeat m_{l+j} (sent j*Delta_i after m_l)
// misses the freshness deadline T_D^U after m_l's send is
//   p_L + (1 - p_L) * V / (V + (T_D^U - j Delta_i)^2)
// and a mistake requires every heartbeat sent within the detection window
// to miss it (the product in Eq 16).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace twfd::config {

/// The application-facing QoS tuple (T_D^U, T_MR^U, T_M^U).
struct QosRequirements {
  /// Upper bound on detection time, seconds.
  double td_upper_s = 1.0;
  /// Upper bound on the average mistake rate, mistakes per second
  /// (equivalently: lower bound 1/x on mistake recurrence time).
  double tmr_upper_per_s = 1.0 / 3600.0;
  /// Upper bound on average mistake duration, seconds.
  double tm_upper_s = 1.0;
};

/// Measured probabilistic behaviour of the heartbeat channel (Sec V-A1).
struct NetworkBehaviour {
  /// p_L: probability a heartbeat is dropped.
  double loss_probability = 0.0;
  /// V(D): variance of one-way delays, seconds^2 (skew-invariant).
  double delay_variance_s2 = 1e-4;
};

/// Output of the configuration procedure.
struct FdConfig {
  bool feasible = false;
  /// Heartbeat inter-send interval Delta_i, seconds (maximised).
  double interval_s = 0.0;
  /// Safety margin Delta_to = T_D^U - Delta_i, seconds.
  double margin_s = 0.0;
  /// The estimated mistake rate at the chosen Delta_i (diagnostics).
  double predicted_mistake_rate_per_s = 0.0;
};

/// Cantelli-bound estimate of the mistake rate for given parameters
/// (the reconstructed Eq 16). Exposed for tests and the Figure 10-12
/// sweeps.
[[nodiscard]] double estimated_mistake_rate(double interval_s, double td_upper_s,
                                            const NetworkBehaviour& net);

/// Steps 1-3 of Section V-A. Returns feasible=false when no Delta_i > 0
/// satisfies the tuple under `net`.
[[nodiscard]] FdConfig chen_configure(const QosRequirements& qos,
                                      const NetworkBehaviour& net);

/// Conservative analytic QoS predicted for a given (Delta_i, Delta_to)
/// under `net` — the inverse direction of chen_configure, used to audit a
/// hand-picked configuration or an adapted shared-service margin.
struct PredictedQos {
  /// Upper bound on detection time: Delta_i + Delta_to (by construction).
  double td_upper_s = 0;
  /// Cantelli-bound mistake rate (reconstructed Eq 16).
  double tmr_upper_per_s = 0;
  /// Mistake-duration bound: expected wait for the next heartbeat that
  /// arrives within the margin, ~ Delta_i / gamma' (Step-1 reasoning).
  double tm_upper_s = 0;
  /// Query-accuracy lower bound: 1 - rate * duration.
  double pa_lower = 1.0;
};

[[nodiscard]] PredictedQos predict_qos(double interval_s, double margin_s,
                                       const NetworkBehaviour& net);

// ---------------------------------------------------------------------------
// Failure detection as a service: combining multiple applications'
// requirements on one host (Section V-C).
// ---------------------------------------------------------------------------

struct AppRequest {
  std::string name;
  QosRequirements qos;
};

struct AppAssignment {
  std::string name;
  /// What a dedicated per-application detector would use (Step 1).
  FdConfig dedicated;
  /// The margin the shared service uses for this app:
  /// Delta_to,j = T_D,j^U - Delta_i,min (Step 3); preserves T_D exactly.
  double shared_margin_s = 0.0;
};

struct CombinedConfig {
  bool feasible = false;
  /// Delta_i,min — the single heartbeat interval the host uses (Step 2).
  double shared_interval_s = 0.0;
  std::vector<AppAssignment> apps;
  /// Network load comparison: heartbeats per second with one dedicated
  /// detector per app vs. the shared service.
  double dedicated_msgs_per_s = 0.0;
  double shared_msgs_per_s = 0.0;
};

/// Steps 1-4 of Section V-C. feasible=false if any app's tuple is
/// individually unachievable under `net`.
[[nodiscard]] CombinedConfig combine_requirements(std::span<const AppRequest> apps,
                                                  const NetworkBehaviour& net);

}  // namespace twfd::config

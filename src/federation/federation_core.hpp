// FederationCore: the deterministic heart of one federated monitor node.
//
// A node is a leaf (its transitions come from the local sharded 2W-FD
// service, via the shard::ShardedMonitorService event-listener export
// hook), an interior aggregator (transitions come from child digests),
// or both. The core keeps the subtree's liveness table — one entry per
// federated peer: origin seq, current verdict, transition instant —
// and feeds a DigestBuilder bound upstream.
//
// Sequence numbers ORIGINATE at the leaf that monitors a peer and pass
// through every level unchanged. That single rule is what makes
// failover loss-free: an interior node that crashes and restarts holds
// an empty table, its children re-send full-state snapshot digests on
// reconnect, and the levels above discard the entries they already
// applied (seq <= stored) while net transitions that happened during
// the outage (seq > stored) still surface. No acknowledgement protocol
// is needed.
//
// The core is single-threaded on purpose: in the live runtime it is
// confined to the FDaaS API thread (api::FederationAdapter contract);
// in the deterministic federation sim it is driven directly with
// virtual time. It never touches a clock or a socket — flush instants
// are passed in.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "api/control.hpp"
#include "api/federation_hooks.hpp"
#include "common/flat_map.hpp"
#include "federation/digest.hpp"

namespace twfd::federation {

class FederationCore final : public api::FederationAdapter {
 public:
  struct Params {
    std::uint64_t node_id = 1;
    /// Upstream digest cadence; also the per-level detection-latency
    /// budget the API server charges against a subscriber's T_D^U.
    Tick flush_interval = ticks_from_ms(50);
    /// Size trigger: a flush is due early once this many transitions
    /// are pending, so bursts do not wait out the interval.
    std::size_t flush_max_pending = 4096;
    /// False at the federation root: transitions are terminal here, the
    /// builder stays empty and flush() never emits.
    bool emit_upstream = true;
    /// Pre-sizes the peer table and builder (100k-peer subtrees).
    std::size_t expected_peers = 0;
  };

  struct Stats {
    std::uint64_t local_transitions = 0;   ///< leaf-side transitions noted
    std::uint64_t local_unmapped = 0;      ///< events with no peer-key mapping
    std::uint64_t digests_ingested = 0;    ///< child digest frames accepted
    std::uint64_t entries_applied = 0;     ///< newer than stored state
    std::uint64_t entries_stale = 0;       ///< replay/out-of-date, dropped
    std::uint64_t entries_foreign = 0;     ///< outside delegated ranges
    std::uint64_t flushes = 0;             ///< non-empty flush() calls
    std::uint64_t frames_flushed = 0;
    std::uint64_t entries_flushed = 0;
    std::uint64_t snapshots_built = 0;     ///< snapshot_digests() calls
    std::uint64_t delegations_applied = 0; ///< Delegate frames adopted
  };

  explicit FederationCore(Params params);

  [[nodiscard]] std::uint64_t node_id() const noexcept { return params_.node_id; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t peer_count() const noexcept { return peers_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return builder_.pending(); }

  // --- api::FederationAdapter (API thread / sim thread) ---

  void set_transition_sink(
      std::function<void(const api::DigestEntry&)> sink) override {
    sink_ = std::move(sink);
  }
  IngestResult ingest_digest(std::uint64_t child_node,
                             const api::DigestMsg& digest) override;
  std::vector<api::DigestMsg> flush(Tick now) override;
  std::vector<api::DigestMsg> snapshot_digests() override;
  std::optional<api::DigestEntry> peer_state(std::uint64_t peer_key) const override;
  [[nodiscard]] Tick flush_interval() const override {
    return params_.flush_interval;
  }

  // --- Leaf side ---

  /// Binds a local ShardedMonitorService subscription id to the peer's
  /// federation-wide key; note_local_event routes through the binding.
  void map_local_subscription(std::uint64_t subscription_id, PeerKey key);
  void unmap_local_subscription(std::uint64_t subscription_id);

  /// A transition drained from the local sharded service (the shard
  /// event-listener hook feeds this). Unmapped subscriptions are
  /// counted and dropped — health events (subscription 0) land here by
  /// design and must never enter the digest stream.
  void note_local_event(std::uint64_t subscription_id, detect::Output output,
                        Tick when);

  /// Direct leaf-side transition for a federated peer (the sim drives
  /// this; note_local_event is the live-runtime path to it). Assigns
  /// the next origin seq. No-op when output equals the stored verdict.
  void note_local_transition(PeerKey key, detect::Output output, Tick when);

  // --- Delegation ---

  /// Adopts a Delegate assignment (newer delegation_seq replaces older;
  /// stale ones are ignored). Ranges are assumed valid per the codec.
  void apply_delegate(const api::DelegateMsg& msg);
  /// True when `key` falls inside the delegated ranges (or none are set).
  [[nodiscard]] bool owns(PeerKey key) const;
  [[nodiscard]] std::uint64_t delegation_seq() const noexcept {
    return delegation_seq_;
  }

  /// True when flush(now) would emit: interval elapsed since the last
  /// non-empty flush, or the size trigger tripped.
  [[nodiscard]] bool due(Tick now) const;

 private:
  struct PeerState {
    std::uint64_t seq = 0;
    detect::Output output = detect::Output::Trust;
    Tick when = 0;
  };

  /// Applies one transition (table + builder + sink). `origin_seq` must
  /// already be assigned. Returns false when stale.
  bool apply(PeerKey key, std::uint64_t seq, detect::Output output, Tick when);

  Params params_;
  FlatMap64<PeerState> peers_;
  FlatMap64<PeerKey> local_subs_;  // local subscription id -> peer key
  DigestBuilder builder_;
  std::function<void(const api::DigestEntry&)> sink_;
  std::vector<api::PeerKeyRange> ranges_;  // empty = owns everything
  std::uint64_t delegation_seq_ = 0;
  Tick last_flush_ = 0;
  bool flushed_once_ = false;
  Stats stats_;
};

}  // namespace twfd::federation

#include "federation/upstream_link.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace twfd::federation {

UpstreamLink::UpstreamLink(
    Params params, std::function<std::vector<api::DigestMsg>()> snapshot_source,
    api::Client::DelegateHandler on_delegate)
    : params_(params),
      snapshot_source_(std::move(snapshot_source)),
      on_delegate_(std::move(on_delegate)) {}

UpstreamLink::~UpstreamLink() { stop(); }

void UpstreamLink::start() {
  if (running_) return;
  {
    std::lock_guard lk(mu_);
    stop_requested_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void UpstreamLink::stop() {
  if (!running_) return;
  {
    std::lock_guard lk(mu_);
    stop_requested_ = true;
  }
  thread_.join();
  running_ = false;
  std::lock_guard lk(mu_);
  connected_ = false;
}

void UpstreamLink::enqueue(std::vector<api::DigestMsg> frames) {
  if (frames.empty()) return;
  std::lock_guard lk(mu_);
  for (auto& f : frames) queue_.push_back(std::move(f));
  while (queue_.size() > params_.max_queued_frames) {
    queue_.pop_front();
    ++stats_.frames_dropped;
  }
}

bool UpstreamLink::connected() const {
  std::lock_guard lk(mu_);
  return connected_;
}

UpstreamLink::Stats UpstreamLink::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

void UpstreamLink::drain_queue(api::ReconnectingClient& rc) {
  for (;;) {
    api::DigestMsg frame;
    {
      std::lock_guard lk(mu_);
      if (queue_.empty() || stop_requested_) return;
      frame = std::move(queue_.front());
      queue_.pop_front();
    }
    if (rc.send_message(api::ControlMessage{frame})) {
      std::lock_guard lk(mu_);
      ++stats_.frames_sent;
    } else {
      // The connection died mid-drain: requeue at the FRONT so ordering
      // holds, and let the next pump turn redial (the connect hook will
      // clear the queue in favour of a snapshot anyway).
      std::lock_guard lk(mu_);
      queue_.push_front(std::move(frame));
      return;
    }
  }
}

void UpstreamLink::run() {
  api::ReconnectingClient::Options opts = params_.client;
  // Bound each redial ladder inside a pump slice so stop() is honoured
  // promptly even while the parent is down.
  opts.sleep_hook = [this, base = params_.client.sleep_hook](Tick sleep_for) {
    {
      std::lock_guard lk(mu_);
      if (stop_requested_) return false;
    }
    if (base) return base(sleep_for);
    std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_for));
    return true;
  };

  api::ReconnectingClient rc(params_.parent, opts);
  rc.set_delegate_handler([this](const api::DelegateMsg& d) {
    if (on_delegate_) on_delegate_(d);
  });
  rc.set_connect_handler([this, &rc] {
    // Fresh connection: whatever deltas were queued for the dead one
    // are superseded by a full-state snapshot (stale entries are
    // dropped upstream by seq, so over-sending is harmless; dropping
    // queued deltas without the snapshot would not be).
    {
      std::lock_guard lk(mu_);
      queue_.clear();
    }
    auto snapshot = snapshot_source_ ? snapshot_source_()
                                     : std::vector<api::DigestMsg>{};
    for (const auto& frame : snapshot) {
      rc.send_message(api::ControlMessage{frame});
    }
    std::lock_guard lk(mu_);
    ++stats_.snapshots_sent;
    stats_.frames_sent += snapshot.size();
  });

  for (;;) {
    {
      std::lock_guard lk(mu_);
      if (stop_requested_) break;
    }
    const bool live = rc.pump_for(params_.pump_slice);
    {
      std::lock_guard lk(mu_);
      connected_ = live;
      stats_.reconnects = rc.reconnects();
    }
    if (live) drain_queue(rc);
  }
  rc.close();
}

}  // namespace twfd::federation

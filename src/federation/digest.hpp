// DigestBuilder: accumulates liveness transitions bound upstream and
// drains them into wire-ready api::DigestMsg frames.
//
// Transitions are coalesced per peer — a peer that flaps
// Trust->Suspect->Trust inside one flush window ships once, with the
// LAST output and the origin seq of that last transition, so upstream
// nodes converge on the net state (intermediate flaps inside a window
// are unobservable by construction, exactly like the reconnecting
// client's snapshot reconciliation). take() sorts entries by peer key
// (the delta-encoding precondition) and chunks them into frames of at
// most api::kMaxDigestEntries, stamping a monotone digest_seq per frame.
#pragma once

#include <cstdint>
#include <vector>

#include "api/control.hpp"
#include "common/flat_map.hpp"

namespace twfd::federation {

using PeerKey = std::uint64_t;

class DigestBuilder {
 public:
  explicit DigestBuilder(std::uint64_t node_id, std::size_t expected_peers = 0);

  /// Records (or coalesces) one pending transition.
  void add(PeerKey peer, std::uint64_t seq, detect::Output output, Tick when);

  [[nodiscard]] std::size_t pending() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear();

  /// Drains everything pending into encoded-order frames (sorted,
  /// chunked, digest_seq stamped). `flags` is applied to every frame.
  [[nodiscard]] std::vector<api::DigestMsg> take(std::uint8_t flags = 0);

  /// Builds frames from an externally assembled entry set (used for
  /// full-state snapshot digests); entries need not be sorted yet.
  [[nodiscard]] std::vector<api::DigestMsg> frames_for(
      std::vector<api::DigestEntry> entries, std::uint8_t flags);

  [[nodiscard]] std::uint64_t frames_built() const noexcept { return next_digest_seq_ - 1; }

 private:
  std::uint64_t node_id_;
  std::uint64_t next_digest_seq_ = 1;
  FlatMap64<std::uint32_t> index_;  // peer key -> slot in entries_
  std::vector<api::DigestEntry> entries_;
};

}  // namespace twfd::federation

#include "federation/federation_core.hpp"

#include <algorithm>

namespace twfd::federation {

FederationCore::FederationCore(Params params)
    : params_(params),
      peers_(params.expected_peers > 0 ? params.expected_peers : 16),
      builder_(params.node_id, params.emit_upstream ? params.expected_peers : 0) {}

bool FederationCore::apply(PeerKey key, std::uint64_t seq,
                           detect::Output output, Tick when) {
  auto [state, inserted] = peers_.try_emplace(key);
  if (!inserted && seq <= state->seq) {
    ++stats_.entries_stale;
    return false;
  }
  const bool changed = inserted || state->output != output;
  state->seq = seq;
  state->output = output;
  state->when = when;
  ++stats_.entries_applied;
  if (params_.emit_upstream) builder_.add(key, seq, output, when);
  // The sink fires only on observable transitions: a seq advance that
  // lands on the same verdict (a flap pair coalesced below) refreshes
  // the table but is not an event.
  if (changed && sink_) sink_({key, seq, output, when});
  return true;
}

FederationCore::IngestResult FederationCore::ingest_digest(
    std::uint64_t /*child_node*/, const api::DigestMsg& digest) {
  IngestResult result;
  ++stats_.digests_ingested;
  for (const api::DigestEntry& e : digest.entries) {
    if (!owns(e.peer_key)) {
      ++result.foreign;
      ++stats_.entries_foreign;
      continue;
    }
    if (apply(e.peer_key, e.seq, e.output, e.when)) {
      ++result.applied;
    } else {
      ++result.stale;
    }
  }
  return result;
}

void FederationCore::map_local_subscription(std::uint64_t subscription_id,
                                            PeerKey key) {
  local_subs_.insert_or_assign(subscription_id, key);
}

void FederationCore::unmap_local_subscription(std::uint64_t subscription_id) {
  local_subs_.erase(subscription_id);
}

void FederationCore::note_local_event(std::uint64_t subscription_id,
                                      detect::Output output, Tick when) {
  const PeerKey* key = local_subs_.find(subscription_id);
  if (key == nullptr) {
    ++stats_.local_unmapped;
    return;
  }
  note_local_transition(*key, output, when);
}

void FederationCore::note_local_transition(PeerKey key, detect::Output output,
                                           Tick when) {
  if (!owns(key)) {
    ++stats_.entries_foreign;
    return;
  }
  const PeerState* existing = peers_.find(key);
  if (existing != nullptr && existing->output == output) return;  // no-op
  const std::uint64_t seq = existing != nullptr ? existing->seq + 1 : 1;
  ++stats_.local_transitions;
  apply(key, seq, output, when);
}

std::vector<api::DigestMsg> FederationCore::flush(Tick now) {
  if (!params_.emit_upstream || builder_.empty() || !due(now)) return {};
  last_flush_ = now;
  flushed_once_ = true;
  auto frames = builder_.take();
  ++stats_.flushes;
  stats_.frames_flushed += frames.size();
  for (const auto& f : frames) stats_.entries_flushed += f.entries.size();
  return frames;
}

std::vector<api::DigestMsg> FederationCore::snapshot_digests() {
  ++stats_.snapshots_built;
  std::vector<api::DigestEntry> entries;
  entries.reserve(peers_.size());
  peers_.for_each([&entries](std::uint64_t key, const PeerState& s) {
    entries.push_back({key, s.seq, s.output, s.when});
  });
  // The snapshot supersedes every pending delta — the upstream link
  // sends it first after a (re)connect, so the builder restarts clean.
  builder_.clear();
  return builder_.frames_for(std::move(entries), api::DigestMsg::kFlagSnapshot);
}

std::optional<api::DigestEntry> FederationCore::peer_state(
    std::uint64_t peer_key) const {
  const PeerState* s = peers_.find(peer_key);
  if (s == nullptr) return std::nullopt;
  return api::DigestEntry{peer_key, s->seq, s->output, s->when};
}

void FederationCore::apply_delegate(const api::DelegateMsg& msg) {
  if (delegation_seq_ != 0 && msg.delegation_seq <= delegation_seq_) return;
  delegation_seq_ = msg.delegation_seq;
  ranges_ = msg.ranges;
  ++stats_.delegations_applied;
}

bool FederationCore::owns(PeerKey key) const {
  if (ranges_.empty()) return true;
  // Ranges are sorted and non-overlapping (codec invariant): find the
  // first range whose hi >= key and check its lo.
  const auto it = std::lower_bound(
      ranges_.begin(), ranges_.end(), key,
      [](const api::PeerKeyRange& r, PeerKey k) { return r.hi < k; });
  return it != ranges_.end() && it->lo <= key;
}

bool FederationCore::due(Tick now) const {
  if (!params_.emit_upstream || builder_.empty()) return false;
  if (builder_.pending() >= params_.flush_max_pending) return true;
  return !flushed_once_ || now - last_flush_ >= params_.flush_interval;
}

}  // namespace twfd::federation

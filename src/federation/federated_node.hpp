// FederatedMonitorNode: one node of the federated monitoring tier.
//
// Composition (docs/runtime.md "Federation tier"):
//
//   ShardedMonitorService --event listener--> FederationCore
//            ^                                   |        ^
//            | subscribe/unsubscribe      flush  |        | ingest
//            |                                   v        |
//          FdaasServer  <--attach_federation-->  (adapter seam)
//            |                                   |
//            | Event frames to subtree           v
//            v subscribers               UpstreamLink --> parent FdaasServer
//
// A LEAF node monitors real peers with its sharded 2W-FD service and
// turns their Suspect/Trust transitions into digest entries (after the
// caller binds each local subscription to a federation-wide peer key
// via subscribe_local). An INTERIOR node aggregates children: their
// UpstreamLinks dial this node's FDaaS port and push Digest frames,
// which the server ingests into the same core. The ROOT simply has no
// parent (emit_upstream=false), so the table is terminal there.
//
// At every level an ordinary api::Client may subscribe to any peer in
// the subtree (zero peer address + peer key as sender_id) and receives
// Event frames within its T_D^U — the server budgets the digest flush
// latency against the requested bound at subscribe time.
//
// Thread contract: FederationCore is confined to the server's API
// thread. Every core access from outside goes through
// FdaasServer::run_on_api_thread — including the UpstreamLink's
// snapshot source and delegate handler, which fire on the link thread.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "api/fdaas_server.hpp"
#include "federation/federation_core.hpp"
#include "federation/upstream_link.hpp"
#include "shard/sharded_monitor_service.hpp"

namespace twfd::federation {

class FederatedMonitorNode {
 public:
  struct Params {
    /// Federation-wide node identity (stable across restarts — failover
    /// depends on the restarted node re-claiming its id upstream).
    std::uint64_t node_id = 1;
    shard::ShardedMonitorService::Params service{};
    api::FdaasServer::Params server{};
    FederationCore::Params core{};
    /// Parent FDaaS address; unset = this node is the federation root.
    std::optional<net::SocketAddress> parent;
    UpstreamLink::Params link{};
  };

  explicit FederatedMonitorNode(Params params);
  ~FederatedMonitorNode();

  FederatedMonitorNode(const FederatedMonitorNode&) = delete;
  FederatedMonitorNode& operator=(const FederatedMonitorNode&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// FDaaS/TWFC port (children dial it; so do subscribers).
  [[nodiscard]] std::uint16_t api_port() const { return server_.port(); }
  /// UDP heartbeat port of the local sharded service.
  [[nodiscard]] std::uint16_t service_port() const { return service_.port(); }

  /// Leaf-side: monitor `peer` with the local 2W-FD service AND bind the
  /// subscription to the federation-wide `key`, so its transitions enter
  /// the digest stream. Returns the local subscription id.
  std::uint64_t subscribe_local(const net::SocketAddress& peer,
                                std::uint64_t sender_id, const std::string& app,
                                const config::QosRequirements& qos,
                                PeerKey key);
  void unsubscribe_local(std::uint64_t subscription_id);

  /// Test/load seam: records a leaf-side transition for `key` directly,
  /// under the API-thread contract — the live path is the shard event
  /// listener. Lets chaos suites drive the digest pipeline without
  /// standing up real heartbeat traffic.
  void inject_transition(PeerKey key, detect::Output output, Tick when);

  /// Interior-side: assign peer-key ranges to a connected child node
  /// (pushes a Delegate frame). False when the child is not connected.
  bool delegate_to_child(std::uint64_t child_node,
                         std::vector<api::PeerKeyRange> ranges);

  /// Core counters, read under the API-thread contract.
  [[nodiscard]] FederationCore::Stats core_stats();
  [[nodiscard]] std::size_t peer_count();

  [[nodiscard]] api::FdaasServer& server() noexcept { return server_; }
  [[nodiscard]] shard::ShardedMonitorService& service() noexcept {
    return service_;
  }
  [[nodiscard]] UpstreamLink* link() noexcept { return link_.get(); }

 private:
  Params params_;
  shard::ShardedMonitorService service_;
  FederationCore core_;
  api::FdaasServer server_;
  std::unique_ptr<UpstreamLink> link_;
  std::uint64_t next_delegation_seq_ = 1;
  bool running_ = false;
};

}  // namespace twfd::federation

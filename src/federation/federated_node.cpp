#include "federation/federated_node.hpp"

#include <utility>

#include "common/assert.hpp"

namespace twfd::federation {

namespace {

FederationCore::Params core_params(const FederatedMonitorNode::Params& p) {
  FederationCore::Params core = p.core;
  core.node_id = p.node_id;
  // A root has nowhere to flush to; keeping the builder off makes the
  // table terminal without a special-case in the server.
  core.emit_upstream = p.parent.has_value();
  return core;
}

}  // namespace

FederatedMonitorNode::FederatedMonitorNode(Params params)
    : params_(std::move(params)),
      service_(params_.service),
      core_(core_params(params_)),
      server_(service_, params_.server) {
  // The shard event listener feeds every drained transition into the
  // core. It runs inside poll_events(), whose sole caller in this
  // composition is the server's API thread — the core's thread contract
  // holds by construction.
  service_.set_event_listener(
      [this](const shard::ShardedMonitorService::StatusEvent& e) {
        core_.note_local_event(e.subscription, e.output, e.when);
      });

  if (params_.parent.has_value()) {
    UpstreamLink::Params link = params_.link;
    link.parent = *params_.parent;
    link_ = std::make_unique<UpstreamLink>(
        std::move(link),
        // Snapshot source and delegate handler fire on the link thread;
        // both marshal onto the API thread before touching the core.
        [this] {
          std::vector<api::DigestMsg> frames;
          server_.run_on_api_thread([this, &frames] {
            frames = core_.snapshot_digests();
          });
          return frames;
        },
        [this](const api::DelegateMsg& d) {
          server_.run_on_api_thread([this, &d] { core_.apply_delegate(d); });
        });
    server_.attach_federation(&core_, [this](std::vector<api::DigestMsg> f) {
      link_->enqueue(std::move(f));
    });
  } else {
    server_.attach_federation(&core_, nullptr);
  }
}

FederatedMonitorNode::~FederatedMonitorNode() { stop(); }

void FederatedMonitorNode::start() {
  TWFD_CHECK_MSG(!running_, "federated node already started");
  service_.start();
  server_.start();
  if (link_) link_->start();
  running_ = true;
}

void FederatedMonitorNode::stop() {
  if (!running_) return;
  // Reverse order: the link stops dialling first, then the server
  // releases sessions while the service still runs (documented order),
  // then the shards come down.
  if (link_) link_->stop();
  server_.stop();
  service_.stop();
  running_ = false;
}

std::uint64_t FederatedMonitorNode::subscribe_local(
    const net::SocketAddress& peer, std::uint64_t sender_id,
    const std::string& app, const config::QosRequirements& qos, PeerKey key) {
  const std::uint64_t id = service_.subscribe(peer, sender_id, app, qos);
  server_.run_on_api_thread(
      [this, id, key] { core_.map_local_subscription(id, key); });
  return id;
}

void FederatedMonitorNode::unsubscribe_local(std::uint64_t subscription_id) {
  server_.run_on_api_thread([this, subscription_id] {
    core_.unmap_local_subscription(subscription_id);
  });
  service_.unsubscribe(subscription_id);
}

void FederatedMonitorNode::inject_transition(PeerKey key, detect::Output output,
                                             Tick when) {
  server_.run_on_api_thread([this, key, output, when] {
    core_.note_local_transition(key, output, when);
  });
}

bool FederatedMonitorNode::delegate_to_child(
    std::uint64_t child_node, std::vector<api::PeerKeyRange> ranges) {
  api::DelegateMsg msg;
  msg.node_id = params_.node_id;
  msg.delegation_seq = next_delegation_seq_++;
  msg.ranges = std::move(ranges);
  return server_.send_delegate(child_node, std::move(msg));
}

FederationCore::Stats FederatedMonitorNode::core_stats() {
  FederationCore::Stats out;
  server_.run_on_api_thread([this, &out] { out = core_.stats(); });
  return out;
}

std::size_t FederatedMonitorNode::peer_count() {
  std::size_t out = 0;
  server_.run_on_api_thread([this, &out] { out = core_.peer_count(); });
  return out;
}

}  // namespace twfd::federation

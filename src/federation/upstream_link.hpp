// UpstreamLink: the one-way digest pipe from a federated node to its
// parent, built on api::ReconnectingClient so it survives parent
// restarts with the same discipline as any FDaaS client.
//
// The link owns a dedicated thread. The API thread enqueues wire-ready
// Digest frames (FederationCore::flush output) from the server's flush
// timer; the link thread alternates between pumping the connection
// (lease renewal + Delegate frames pushed by the parent) and draining
// the queue with fire-and-forget sends. On every (re)connect the
// ReconnectingClient's connect hook fires: queued deltas are discarded
// and a full-state snapshot digest — fetched from the node through the
// snapshot source, marshalled onto the API thread by the caller — is
// sent instead. The snapshot supersedes anything the dead connection
// swallowed; the seq-originates-at-leaf rule makes the replay free of
// duplicates upstream (already-applied entries are stale-dropped).
//
// The queue is bounded: beyond max_queued_frames the OLDEST frames are
// dropped (and counted), because the reconnect snapshot restores any
// state they carried — bounded memory beats a perfect delta history.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/reconnecting_client.hpp"

namespace twfd::federation {

class UpstreamLink {
 public:
  struct Params {
    net::SocketAddress parent{};
    api::ReconnectingClient::Options client{};
    /// Queue bound; overflow drops oldest (snapshot-on-reconnect makes
    /// that safe) and counts it.
    std::size_t max_queued_frames = 4096;
    /// How long each pump turn listens for Delegate pushes before
    /// checking the queue again — the upper bound on send latency added
    /// by the link itself.
    Tick pump_slice = ticks_from_ms(20);
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_dropped = 0;   ///< queue-overflow discards
    std::uint64_t snapshots_sent = 0;   ///< reconnect snapshot pushes
    std::uint64_t reconnects = 0;       ///< recoveries beyond first connect
  };

  /// `snapshot_source` supplies the full-state digests pushed after a
  /// (re)connect; the caller is responsible for making it safe to call
  /// from the link thread (the federated node marshals it onto the API
  /// thread). `on_delegate` receives parent-pushed Delegate frames on
  /// the link thread, same contract.
  UpstreamLink(Params params,
               std::function<std::vector<api::DigestMsg>()> snapshot_source,
               api::Client::DelegateHandler on_delegate);
  ~UpstreamLink();

  UpstreamLink(const UpstreamLink&) = delete;
  UpstreamLink& operator=(const UpstreamLink&) = delete;

  void start();
  void stop();

  /// Queues frames for upstream delivery; callable from any thread.
  void enqueue(std::vector<api::DigestMsg> frames);

  [[nodiscard]] bool connected() const;
  [[nodiscard]] Stats stats() const;

 private:
  void run();
  /// Sends everything queued on the live connection; frames that fail
  /// mid-drain go back to the front for the next turn.
  void drain_queue(api::ReconnectingClient& rc);

  Params params_;
  std::function<std::vector<api::DigestMsg>()> snapshot_source_;
  api::Client::DelegateHandler on_delegate_;

  mutable std::mutex mu_;
  std::deque<api::DigestMsg> queue_;
  Stats stats_;
  bool connected_ = false;
  bool stop_requested_ = false;

  std::thread thread_;
  bool running_ = false;
};

}  // namespace twfd::federation

#include "federation/digest.hpp"

#include <algorithm>

namespace twfd::federation {

DigestBuilder::DigestBuilder(std::uint64_t node_id, std::size_t expected_peers)
    : node_id_(node_id) {
  if (expected_peers > 0) {
    index_.reserve(expected_peers);
    entries_.reserve(expected_peers);
  }
}

void DigestBuilder::add(PeerKey peer, std::uint64_t seq, detect::Output output,
                        Tick when) {
  auto [slot, inserted] =
      index_.try_emplace(peer, static_cast<std::uint32_t>(entries_.size()));
  if (inserted) {
    entries_.push_back({peer, seq, output, when});
    return;
  }
  // Coalesce: the peer already has a pending transition; the later one
  // (higher origin seq) wins, so only the net state ships.
  api::DigestEntry& e = entries_[*slot];
  if (seq >= e.seq) {
    e.seq = seq;
    e.output = output;
    e.when = when;
  }
}

void DigestBuilder::clear() {
  index_.clear();
  entries_.clear();
}

std::vector<api::DigestMsg> DigestBuilder::take(std::uint8_t flags) {
  std::vector<api::DigestEntry> drained = std::move(entries_);
  entries_ = {};
  index_.clear();
  return frames_for(std::move(drained), flags);
}

std::vector<api::DigestMsg> DigestBuilder::frames_for(
    std::vector<api::DigestEntry> entries, std::uint8_t flags) {
  std::vector<api::DigestMsg> frames;
  if (entries.empty()) return frames;
  std::sort(entries.begin(), entries.end(),
            [](const api::DigestEntry& a, const api::DigestEntry& b) {
              return a.peer_key < b.peer_key;
            });
  frames.reserve((entries.size() + api::kMaxDigestEntries - 1) /
                 api::kMaxDigestEntries);
  for (std::size_t pos = 0; pos < entries.size();
       pos += api::kMaxDigestEntries) {
    const std::size_t n =
        std::min(api::kMaxDigestEntries, entries.size() - pos);
    api::DigestMsg frame;
    frame.node_id = node_id_;
    frame.digest_seq = next_digest_seq_++;
    frame.flags = flags;
    frame.entries.assign(entries.begin() + static_cast<std::ptrdiff_t>(pos),
                         entries.begin() + static_cast<std::ptrdiff_t>(pos + n));
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace twfd::federation

#include "shard/sharded_monitor_service.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <stdexcept>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/assert.hpp"

namespace twfd::shard {
namespace {

/// Thrown by the WorkerFault::kCrash test seam; any exception escaping a
/// command or handler kills the worker the same way.
struct WorkerCrash : std::runtime_error {
  WorkerCrash() : std::runtime_error("injected worker crash") {}
};

/// Distinct deterministic per-shard chaos seed (splitmix64 step of the
/// plan seed, keyed by shard index): every shard draws an independent
/// fault schedule, yet the whole run is reproducible from one seed.
std::uint64_t shard_chaos_seed(std::uint64_t base, std::size_t index) {
  std::uint64_t x = base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t shard_of(const net::SocketAddress& addr, std::size_t shard_count) {
  TWFD_CHECK(shard_count >= 1);
  // splitmix64 finalizer over ip:port — cheap, well-mixed, and identical
  // everywhere a routing decision is made.
  std::uint64_t x =
      (std::uint64_t{addr.ip_host_order} << 16) ^ std::uint64_t{addr.port};
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shard_count);
}

ShardedMonitorService::ShardStats& ShardedMonitorService::ShardStats::operator+=(
    const ShardStats& o) {
  loop += o.loop;
  dispatcher_heartbeats += o.dispatcher_heartbeats;
  dispatcher_malformed += o.dispatcher_malformed;
  service_heartbeats += o.service_heartbeats;
  handoff_out += o.handoff_out;
  handoff_dropped += o.handoff_dropped;
  handoff_batches += o.handoff_batches;
  commands_run += o.commands_run;
  events_dropped += o.events_dropped;
  post_retries += o.post_retries;
  post_stalls += o.post_stalls;
  restarts += o.restarts;
  stalls_detected += o.stalls_detected;
  resubscribed += o.resubscribed;
  degraded += o.degraded;
  pinned += o.pinned;
  chaos += o.chaos;
  return *this;
}

ShardedMonitorService::Shard::Shard(std::size_t idx, const Params& params)
    : index(idx),
      commands(params.command_queue_capacity),
      events(params.event_queue_capacity) {
  staging.resize(params.shards);
}

void ShardedMonitorService::build_shard_runtime(Shard& s) {
  net::UdpSocket::Options opts;
  opts.port = s.bind_port;
  opts.reuse_port = s.reuse_port;
  opts.rcvbuf_bytes = params_.rcvbuf_bytes;
  s.loop = std::make_unique<net::EventLoop>(opts);
  s.dispatcher = std::make_unique<service::Dispatcher>(s.loop->runtime());
  service::FdService::Params service_params = params_.service;
  if (live_heartbeats_ != nullptr) {
    service_params.obs_heartbeats = live_heartbeats_;
    service_params.obs_cell = s.index;
  }
  s.fd = std::make_unique<service::FdService>(s.loop->runtime(), service_params);
  auto* fdp = s.fd.get();
  s.dispatcher->on_heartbeat(
      [fdp](PeerId from, const net::HeartbeatMsg& m, Tick at) {
        fdp->handle_heartbeat(from, m, at);
      });

  Shard* sp = &s;
  if (params_.chaos.any_datagram_faults()) {
    net::FaultPlan plan = params_.chaos;
    plan.seed = shard_chaos_seed(params_.chaos.seed, s.index);
    // The injector re-emits delayed/reordered datagrams from timers, so
    // a foreign datagram can be staged outside a receive batch; the sink
    // flushes hand-offs itself, trading some wake coalescing (chaos is a
    // drill mode) for never stranding a staged datagram.
    s.chaos = std::make_unique<net::FaultInjector>(
        *s.loop, *s.loop, plan,
        [this, sp](const net::SocketAddress& from, std::span<const std::byte> data,
                   Tick arrival) {
          route_datagram(*sp, from, data, arrival);
          flush_handoffs(*sp);
        });
  }

  // The router replaces the Dispatcher's auto-installed handler: owned
  // datagrams go straight into the dispatcher, foreign ones are handed
  // off to their owner's command queue. Hand-off replays re-enter here
  // via inject_datagram with in_handoff set — already-chaosed traffic is
  // never run through the plan a second time.
  s.loop->set_receive_handler(
      [this, sp](PeerId from, std::span<const std::byte> data, Tick arrival) {
        const net::SocketAddress addr = sp->loop->peer_address(from);
        if (sp->chaos && !sp->in_handoff) {
          sp->chaos->offer(addr, data, arrival);
        } else {
          route_datagram(*sp, addr, data, arrival);
        }
      });
  // Foreign datagrams staged by the router are flushed once per receive
  // batch — one bulk command and at most one wake per destination shard.
  s.loop->set_batch_end_handler([this, sp] { flush_handoffs(*sp); });
  s.loop->set_wake_handler([this, sp] { drain_commands(*sp); });
}

ShardedMonitorService::ShardedMonitorService(Params params)
    : params_(std::move(params)) {
  TWFD_CHECK_MSG(params_.shards >= 1, "need at least one shard");
  if (params_.registry != nullptr) {
    live_heartbeats_ = &params_.registry->sharded_counter(
        "twfd_shard_heartbeats_total",
        "Heartbeats applied on the shard hot path (live, per-shard cells).",
        params_.shards);
  }
  const bool reuse =
      params_.receive_mode == ReceiveMode::kReusePort && params_.shards > 1;

  for (std::size_t i = 0; i < params_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, params_));
  }

  // Shard 0 resolves the service port (possibly ephemeral); in reuse-port
  // mode every other shard joins it, in single-socket mode they bind
  // ephemeral send-side sockets. Each shard remembers its RESOLVED port
  // so a supervisor rebuild rebinds the same one.
  shards_[0]->bind_port = params_.port;
  shards_[0]->reuse_port = reuse;
  build_shard_runtime(*shards_[0]);
  service_port_ = shards_[0]->loop->local_port();
  shards_[0]->bind_port = service_port_;
  for (std::size_t i = 1; i < params_.shards; ++i) {
    Shard& s = *shards_[i];
    s.reuse_port = reuse;
    s.bind_port = reuse ? service_port_ : std::uint16_t{0};
    build_shard_runtime(s);
  }

  {
    std::lock_guard lk(view_mu_);
    view_ = std::make_shared<const Snapshot>();
  }
}

ShardedMonitorService::~ShardedMonitorService() { stop(); }

void ShardedMonitorService::start() {
  TWFD_CHECK_MSG(!running_, "service already started");
  running_ = true;
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    s->thread = std::thread([this, s] { worker_main(*s); });
  }
  if (params_.supervision.enabled) {
    {
      std::lock_guard lk(sup_mu_);
      sup_stop_ = false;
    }
    supervisor_ = std::thread([this] { supervisor_main(); });
  }
}

void ShardedMonitorService::stop() {
  if (!running_) return;
  // The supervisor goes first so no restart can race the teardown.
  if (supervisor_.joinable()) {
    {
      std::lock_guard lk(sup_mu_);
      sup_stop_ = true;
    }
    sup_cv_.notify_all();
    supervisor_.join();
  }
  // Stop flag first, then wake: the worker's wake handler re-checks the
  // flag, so the wake that follows the store can never be lost even if
  // run_until resets the loop's own stop latch.
  for (auto& sp : shards_) {
    sp->stop_requested.store(true, std::memory_order_release);
    std::lock_guard lk(sp->swap_mu);
    if (sp->loop) sp->loop->stop();
  }
  for (auto& sp : shards_) {
    if (sp->thread.joinable()) sp->thread.join();
  }
  running_ = false;
  // Discard unexecuted commands — any waiter sees broken_promise rather
  // than hanging — then fold remaining transitions into the snapshot.
  for (auto& sp : shards_) {
    Command cmd;
    while (sp->commands.try_pop(cmd)) cmd = nullptr;
  }
  poll_events();
}

void ShardedMonitorService::maybe_pin(Shard& s) {
  s.pinned.store(false, std::memory_order_relaxed);
  if (!params_.pin_cores) return;
#if defined(__linux__)
  // Pin shard i to the i-th CPU the process is allowed on — robust to
  // sparse/offline CPU ids and cgroup cpusets, unlike assuming ids
  // 0..N-1. Skip gracefully when there are fewer usable cores than
  // shards: pinning two workers to one core is strictly worse than
  // letting the scheduler migrate them.
  cpu_set_t avail;
  CPU_ZERO(&avail);
  if (sched_getaffinity(0, sizeof(avail), &avail) != 0) return;
  const int cores = CPU_COUNT(&avail);
  if (cores <= 0 || shards_.size() > static_cast<std::size_t>(cores)) return;
  int want = static_cast<int>(s.index);
  int cpu = -1;
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &avail) && want-- == 0) {
      cpu = c;
      break;
    }
  }
  if (cpu < 0) return;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  if (pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0) {
    s.pinned.store(true, std::memory_order_relaxed);
  }
#endif
}

void ShardedMonitorService::worker_main(Shard& s) {
  maybe_pin(s);
  // Sliced loop: each slice advances the liveness counter the supervisor
  // watches, so a worker that wedges inside a handler stops advancing and
  // is declared degraded after Supervision::stall_timeout.
  const Tick slice =
      std::max<Tick>(params_.supervision.worker_heartbeat_period, ticks_from_ms(1));
  try {
    while (!s.stop_requested.load(std::memory_order_acquire)) {
      s.liveness.fetch_add(1, std::memory_order_relaxed);
      s.loop->run_until(tick_add_sat(s.loop->now(), slice));
    }
  } catch (...) {
    // A command or handler threw (fault injection, or a genuine defect).
    // Record the crash and fall through: the supervisor rebuilds this
    // shard's runtime and re-seeds its subscriptions.
  }
  s.worker_exited.store(true, std::memory_order_release);
}

void ShardedMonitorService::drain_commands(Shard& s) {
  Command cmd;
  while (s.commands.try_pop(cmd)) {
    ++s.commands_run;
    cmd();
    cmd = nullptr;
  }
  if (s.stop_requested.load(std::memory_order_acquire)) s.loop->stop();
}

void ShardedMonitorService::route_datagram(Shard& s, const net::SocketAddress& from,
                                           std::span<const std::byte> data,
                                           Tick arrival) {
  const std::size_t owner = shard_of(from, shards_.size());
  if (owner == s.index) {
    s.dispatcher->ingest(s.loop->add_peer(from), data, arrival);
    return;
  }
  // Hash hand-off: stage the raw bytes (plus the arrival stamp observed
  // here, so the owner's estimator sees the true receive time) for the
  // owning shard. The stage is flushed once per receive batch.
  HandoffStage& stage = s.staging[owner];
  HandoffStage::Item item;
  item.from = from;
  item.arrival = arrival;
  item.offset = static_cast<std::uint32_t>(stage.bytes.size());
  item.length = static_cast<std::uint32_t>(data.size());
  stage.bytes.insert(stage.bytes.end(), data.begin(), data.end());
  stage.items.push_back(item);
}

void ShardedMonitorService::flush_handoffs(Shard& s) {
  for (std::size_t owner = 0; owner < s.staging.size(); ++owner) {
    HandoffStage& stage = s.staging[owner];
    if (stage.empty()) continue;
    const std::uint64_t count = stage.items.size();
    Shard& dst = *shards_[owner];
    // The whole stage moves into one command; the staging slot is left
    // empty (moved-from) and regrows next batch. Heartbeats are
    // loss-tolerant, so a full queue drops the batch (counted) instead of
    // blocking the receive path. in_handoff marks the replay so the
    // destination's chaos wrapper does not distort the bytes again.
    Command cmd = [dstp = &dst, batch = std::move(stage)] {
      dstp->in_handoff = true;
      for (const HandoffStage::Item& it : batch.items) {
        dstp->loop->inject_datagram(
            it.from,
            std::span<const std::byte>(batch.bytes.data() + it.offset, it.length),
            it.arrival);
      }
      dstp->in_handoff = false;
    };
    stage = HandoffStage{};
    if (!dst.commands.try_push(std::move(cmd))) {
      s.handoff_dropped += count;
      continue;
    }
    s.handoff_out += count;
    ++s.handoff_batches;
    wake_shard(dst);
  }
}

void ShardedMonitorService::wake_shard(Shard& s) {
  std::lock_guard lk(s.swap_mu);
  if (s.loop) s.loop->wake();
}

void ShardedMonitorService::post(Shard& s, Command cmd) {
  // Bounded backoff ladder instead of an unbounded spin: a wedged shard
  // (worker crashed mid-rebuild, or stuck in a handler) must not livelock
  // the control plane. Yield a few rounds, then sleep in 1 ms steps, then
  // give up with an exception the caller can surface.
  constexpr int kYieldRounds = 64;
  constexpr int kSleepRounds = 200;  // 200 x 1 ms ≈ 200 ms worst case
  for (int attempt = 0;; ++attempt) {
    if (s.commands.try_push(std::move(cmd))) break;
    s.post_retries.fetch_add(1, std::memory_order_relaxed);
    if (attempt >= kYieldRounds + kSleepRounds) {
      s.post_stalls.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("shard " + std::to_string(s.index) +
                               ": command queue wedged, post abandoned");
    }
    wake_shard(s);
    if (attempt < kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  wake_shard(s);
}

void ShardedMonitorService::publish_event(Shard& s, StatusEvent event) {
  if (!s.events.try_push(std::move(event))) {
    s.events_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

ShardedMonitorService::SubscriptionId ShardedMonitorService::subscribe(
    const net::SocketAddress& peer, std::uint64_t sender_id, std::string app,
    const config::QosRequirements& qos) {
  return subscribe(peer, sender_id, std::move(app), qos, Initial{});
}

ShardedMonitorService::SubscriptionId ShardedMonitorService::subscribe(
    const net::SocketAddress& peer, std::uint64_t sender_id, std::string app,
    const config::QosRequirements& qos, Initial initial) {
  TWFD_CHECK_MSG(running_, "subscribe() requires a started service");
  const std::size_t idx = shard_for(peer);
  Shard& s = *shards_[idx];
  const SubscriptionId gid = next_sub_id_.fetch_add(1, std::memory_order_relaxed);

  {
    // Seed the view before the shard can emit events for this id, so no
    // transition is ever applied to a missing entry. A restored seed
    // starts at its persisted verdict, not at Trust.
    std::lock_guard lk(agg_mu_);
    state_[gid] = {gid, app, initial.output, initial.since, idx};
    republish_locked();
  }

  auto prom =
      std::make_shared<std::promise<service::FdService::SubscriptionId>>();
  auto fut = prom->get_future();
  service::FdService::SubscriptionId local = 0;
  try {
    post(s, [this, sp = &s, peer, sender_id, app, qos, gid, prom,
             out = initial.output] {
      try {
        prom->set_value(sp->fd->subscribe(
            sp->loop->add_peer(peer), sender_id, app, qos,
            [this, sp, gid](const service::FdService::StatusEvent& e) {
              publish_event(*sp, {gid, e.app, e.output, e.when, sp->index});
            },
            out));
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    });
    local = fut.get();  // rethrows infeasible-QoS from the shard thread
  } catch (...) {
    // post() gave up on a wedged shard, or the shard rejected the tuple:
    // roll the seeded view entry back.
    std::lock_guard lk(agg_mu_);
    state_.erase(gid);
    republish_locked();
    throw;
  }
  std::lock_guard lk(control_mu_);
  subs_[gid] = {idx, local, peer, sender_id, std::move(app), qos};
  return gid;
}

void ShardedMonitorService::unsubscribe(SubscriptionId id) {
  TWFD_CHECK_MSG(running_, "unsubscribe() requires a started service");
  SubRef ref;
  {
    std::lock_guard lk(control_mu_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return;
    ref = it->second;
  }
  Shard& s = *shards_[ref.shard];
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post(s, [sp = &s, local = ref.local, prom] {
    sp->fd->unsubscribe(local);
    prom->set_value();
  });
  fut.get();
  // Deregister only after the shard acked: if post() threw on a wedged
  // shard the registry still owns the subscription (and a later restart
  // will re-seed it).
  {
    std::lock_guard lk(control_mu_);
    subs_.erase(id);
  }
  std::lock_guard lk(agg_mu_);
  state_.erase(id);
  republish_locked();
}

std::vector<ShardedMonitorService::SubscriptionSeed>
ShardedMonitorService::export_seeds() {
  // Join the control registry (what is subscribed) with the published
  // view (what each subscription's current verdict is). Both sides are
  // safe off-shard: the registry under control_mu_, the view as an
  // immutable snapshot. std::map iteration gives subscription-id order.
  const auto snap = view();
  std::vector<SubscriptionSeed> seeds;
  std::lock_guard lk(control_mu_);
  seeds.reserve(subs_.size());
  for (const auto& [gid, ref] : subs_) {
    SubscriptionSeed seed;
    seed.peer = ref.peer;
    seed.sender_id = ref.sender_id;
    seed.app = ref.app;
    seed.qos = ref.qos;
    const auto it = std::lower_bound(
        snap->entries.begin(), snap->entries.end(), gid,
        [](const Snapshot::Entry& e, SubscriptionId id) {
          return e.subscription < id;
        });
    if (it != snap->entries.end() && it->subscription == gid) {
      seed.last = it->output;
      seed.since = it->since;
    }
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

ShardedMonitorService::SubscriptionId ShardedMonitorService::import_seed(
    const SubscriptionSeed& seed) {
  return subscribe(seed.peer, seed.sender_id, seed.app, seed.qos,
                   {seed.last, seed.since});
}

void ShardedMonitorService::reconfigure(const net::SocketAddress& peer) {
  TWFD_CHECK_MSG(running_, "reconfigure() requires a started service");
  Shard& s = *shards_[shard_for(peer)];
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post(s, [sp = &s, peer, prom] {
    sp->fd->reconfigure(sp->loop->add_peer(peer));
    prom->set_value();
  });
  fut.get();
}

std::size_t ShardedMonitorService::poll_events(
    const std::function<void(const StatusEvent&)>& fn) {
  std::lock_guard lk(agg_mu_);
  std::size_t drained = 0;
  StatusEvent e;
  for (auto& sp : shards_) {
    while (sp->events.try_pop(e)) {
      ++drained;
      ++events_seen_;
      // Health events (subscription 0) pass through to `fn` but are not
      // snapshot entries; verdicts update the per-subscription state.
      const auto it = state_.find(e.subscription);
      if (it != state_.end()) {
        it->second.output = e.output;
        it->second.since = e.when;
      }
      if (event_listener_) event_listener_(e);
      if (fn) fn(e);
    }
  }
  if (drained > 0) republish_locked();
  return drained;
}

void ShardedMonitorService::republish_locked() {
  auto snap = std::make_shared<Snapshot>();
  snap->entries.reserve(state_.size());
  for (const auto& [id, entry] : state_) snap->entries.push_back(entry);
  snap->events_seen = events_seen_;
  std::lock_guard lk(view_mu_);
  view_ = std::shared_ptr<const Snapshot>(std::move(snap));
}

// --- Supervision -----------------------------------------------------------

ShardedMonitorService::ShardHealth ShardedMonitorService::health(
    std::size_t shard) const {
  TWFD_CHECK(shard < shards_.size());
  const Shard& s = *shards_[shard];
  ShardHealth h;
  h.degraded = s.degraded.load(std::memory_order_relaxed);
  h.worker_exited = s.worker_exited.load(std::memory_order_acquire);
  h.restarts = s.restarts.load(std::memory_order_relaxed);
  h.stalls_detected = s.stalls_detected.load(std::memory_order_relaxed);
  h.liveness = s.liveness.load(std::memory_order_relaxed);
  return h;
}

std::size_t ShardedMonitorService::degraded_count() const {
  std::size_t n = 0;
  for (const auto& sp : shards_) {
    if (sp->degraded.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

void ShardedMonitorService::inject_worker_fault(std::size_t shard,
                                                WorkerFault fault,
                                                Tick stall_for) {
  TWFD_CHECK(shard < shards_.size());
  Shard& s = *shards_[shard];
  switch (fault) {
    case WorkerFault::kCrash:
      post(s, [] { throw WorkerCrash{}; });
      break;
    case WorkerFault::kStall:
      post(s, [stall_for] {
        std::this_thread::sleep_for(std::chrono::nanoseconds(stall_for));
      });
      break;
  }
}

void ShardedMonitorService::emit_health(Shard& s, detect::Output output) {
  StatusEvent e;
  e.subscription = kHealthSubscription;
  e.app = "shard-" + std::to_string(s.index);
  e.output = output;
  e.when = SteadyClock{}.now();
  e.shard = s.index;
  publish_event(s, std::move(e));
}

bool ShardedMonitorService::restart_shard(Shard& s) {
  if (s.thread.joinable()) s.thread.join();
  {
    std::lock_guard lk(s.swap_mu);
    // Destruction order: service and dispatcher hold the loop's runtime,
    // and the chaos injector's pending timers live in the loop, so the
    // loop goes last — and is destroyed before the new one binds, so the
    // saved port is free to rebind.
    s.fd.reset();
    s.dispatcher.reset();
    s.chaos.reset();
    s.loop.reset();
    try {
      build_shard_runtime(s);
    } catch (...) {
      // Rebind/rebuild failed (e.g. the port was stolen while we were
      // down). Leave the shard dead; the supervisor backs off and retries.
      s.fd.reset();
      s.dispatcher.reset();
      s.chaos.reset();
      s.loop.reset();
      return false;
    }
  }
  s.worker_exited.store(false, std::memory_order_release);

  // Re-seed the subscriptions this shard owned. The control registry is
  // the source of truth; the aggregated view still carries each
  // subscription's last verdict, so monitoring resumes here and the next
  // genuine transition restores full parity with an uncrashed run. The
  // worker thread is not running yet, so the shard runtime is exclusively
  // ours — no marshalling needed.
  std::vector<std::pair<SubscriptionId, SubRef>> owned;
  {
    std::lock_guard lk(control_mu_);
    for (const auto& [gid, ref] : subs_) {
      if (ref.shard == s.index) owned.emplace_back(gid, ref);
    }
  }
  // Prime each re-seed from the verdict the view retained. Without this a
  // subscription the view holds at Suspect gets a fresh detector that
  // believes Trust: a live peer then never produces a Trust *transition*
  // event, so the view would stay Suspect forever.
  std::map<SubscriptionId, detect::Output> retained;
  {
    std::lock_guard lk(agg_mu_);
    for (const auto& [gid, ref] : owned) {
      const auto it = state_.find(gid);
      if (it != state_.end()) retained[gid] = it->second.output;
    }
  }
  for (auto& [gid, ref] : owned) {
    const auto rit = retained.find(gid);
    const detect::Output last =
        rit != retained.end() ? rit->second : detect::Output::Trust;
    try {
      const auto local = s.fd->subscribe(
          s.loop->add_peer(ref.peer), ref.sender_id, ref.app, ref.qos,
          [this, sp = &s, gid](const service::FdService::StatusEvent& e) {
            publish_event(*sp, {gid, e.app, e.output, e.when, sp->index});
          },
          last);
      {
        std::lock_guard lk(control_mu_);
        const auto it = subs_.find(gid);
        if (it != subs_.end()) it->second.local = local;
      }
      s.resubscribed.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      // The tuple was feasible before the crash; if it is rejected now we
      // drop this subscription rather than wedge the restart.
    }
  }

  s.thread = std::thread([this, sp = &s] { worker_main(*sp); });
  return true;
}

void ShardedMonitorService::supervisor_main() {
  struct Track {
    std::uint64_t last_liveness = 0;
    Tick last_advance = 0;
    Tick last_restart = 0;
    Tick backoff = 0;
    Tick restart_at = kTickInfinity;
  };
  const Supervision& sup = params_.supervision;
  SteadyClock clock;
  std::vector<Track> tracks(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    tracks[i].last_liveness = shards_[i]->liveness.load(std::memory_order_relaxed);
    tracks[i].last_advance = clock.now();
    tracks[i].backoff = sup.restart_backoff_min;
  }

  std::unique_lock lk(sup_mu_);
  while (!sup_stop_) {
    sup_cv_.wait_for(lk, std::chrono::nanoseconds(sup.check_interval),
                     [this] { return sup_stop_; });
    if (sup_stop_) break;
    lk.unlock();

    const Tick now = clock.now();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& s = *shards_[i];
      Track& t = tracks[i];
      const std::uint64_t lv = s.liveness.load(std::memory_order_relaxed);
      const bool exited = s.worker_exited.load(std::memory_order_acquire);

      if (lv != t.last_liveness) {
        t.last_liveness = lv;
        t.last_advance = now;
        if (s.degraded.load(std::memory_order_relaxed) && !exited) {
          // A stalled worker resumed, or a restarted one came back up.
          s.degraded.store(false, std::memory_order_relaxed);
          emit_health(s, detect::Output::Trust);
        }
      }

      if (!s.degraded.load(std::memory_order_relaxed)) {
        // A healthy stretch as long as the watchdog bound earns the shard
        // its minimum backoff again (a crash loop keeps the doubled one).
        if (t.backoff != sup.restart_backoff_min &&
            now - t.last_restart >= sup.stall_timeout) {
          t.backoff = sup.restart_backoff_min;
        }
        const bool stalled = now - t.last_advance >= sup.stall_timeout;
        if (exited || stalled) {
          s.degraded.store(true, std::memory_order_relaxed);
          if (!exited) s.stalls_detected.fetch_add(1, std::memory_order_relaxed);
          emit_health(s, detect::Output::Suspect);
          t.restart_at = tick_add_sat(now, exited ? 0 : sup.restart_backoff_min);
        }
      }

      // Only an EXITED worker is restarted — a wedged C++ thread cannot
      // be killed safely, so a stall stays degraded until it resumes.
      if (s.degraded.load(std::memory_order_relaxed) && exited &&
          now >= t.restart_at) {
        restart_shard(s);
        s.restarts.fetch_add(1, std::memory_order_relaxed);
        t.last_restart = now;
        t.restart_at = tick_add_sat(now, t.backoff);
        t.backoff = std::min<Tick>(t.backoff * 2, sup.restart_backoff_max);
        t.last_liveness = s.liveness.load(std::memory_order_relaxed);
        t.last_advance = now;
      }
    }

    lk.lock();
  }
}

// --- Stats -----------------------------------------------------------------

ShardedMonitorService::ShardStats ShardedMonitorService::collect_supervision_stats(
    Shard& s) const {
  ShardStats st;
  st.events_dropped = s.events_dropped.load(std::memory_order_relaxed);
  st.post_retries = s.post_retries.load(std::memory_order_relaxed);
  st.post_stalls = s.post_stalls.load(std::memory_order_relaxed);
  st.restarts = s.restarts.load(std::memory_order_relaxed);
  st.stalls_detected = s.stalls_detected.load(std::memory_order_relaxed);
  st.resubscribed = s.resubscribed.load(std::memory_order_relaxed);
  st.degraded = s.degraded.load(std::memory_order_relaxed) ? 1 : 0;
  st.pinned = s.pinned.load(std::memory_order_relaxed) ? 1 : 0;
  return st;
}

ShardedMonitorService::ShardStats ShardedMonitorService::collect_stats_on_shard(
    Shard& s) const {
  ShardStats st = collect_supervision_stats(s);
  if (!s.loop) return st;  // shard died and its rebuild failed
  st.loop = s.loop->stats();
  st.dispatcher_heartbeats = s.dispatcher->heartbeat_count();
  st.dispatcher_malformed = s.dispatcher->malformed_count();
  st.service_heartbeats = s.fd->heartbeats_processed();
  st.handoff_out = s.handoff_out;
  st.handoff_dropped = s.handoff_dropped;
  st.handoff_batches = s.handoff_batches;
  st.commands_run = s.commands_run;
  if (s.chaos) st.chaos = s.chaos->stats();
  return st;
}

std::vector<ShardedMonitorService::ShardStats> ShardedMonitorService::shard_stats() {
  std::vector<ShardStats> out(shards_.size());
  if (!running_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      out[i] = collect_stats_on_shard(*shards_[i]);
    }
    return out;
  }
  // Marshal a stats command per shard, but never hang on a dead or
  // wedged one: a bounded wait, then fall back to the supervision
  // atomics (shard-confined counters read as zero for that shard).
  std::vector<std::future<ShardStats>> futures(shards_.size());
  std::vector<bool> posted(shards_.size(), false);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    auto prom = std::make_shared<std::promise<ShardStats>>();
    futures[i] = prom->get_future();
    Shard* s = shards_[i].get();
    try {
      post(*s, [this, s, prom] { prom->set_value(collect_stats_on_shard(*s)); });
      posted[i] = true;
    } catch (const std::runtime_error&) {
      posted[i] = false;
    }
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (posted[i] &&
        futures[i].wait_for(std::chrono::seconds(2)) == std::future_status::ready) {
      out[i] = futures[i].get();
    } else {
      out[i] = collect_supervision_stats(*shards_[i]);
    }
  }
  return out;
}

ShardedMonitorService::ShardStats ShardedMonitorService::merged_stats() {
  ShardStats total;
  for (const auto& st : shard_stats()) total += st;
  return total;
}

}  // namespace twfd::shard

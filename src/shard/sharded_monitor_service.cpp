#include "shard/sharded_monitor_service.hpp"

#include <future>
#include <utility>

#include "common/assert.hpp"

namespace twfd::shard {

std::size_t shard_of(const net::SocketAddress& addr, std::size_t shard_count) {
  TWFD_CHECK(shard_count >= 1);
  // splitmix64 finalizer over ip:port — cheap, well-mixed, and identical
  // everywhere a routing decision is made.
  std::uint64_t x =
      (std::uint64_t{addr.ip_host_order} << 16) ^ std::uint64_t{addr.port};
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shard_count);
}

ShardedMonitorService::ShardStats& ShardedMonitorService::ShardStats::operator+=(
    const ShardStats& o) {
  loop += o.loop;
  dispatcher_heartbeats += o.dispatcher_heartbeats;
  dispatcher_malformed += o.dispatcher_malformed;
  service_heartbeats += o.service_heartbeats;
  handoff_out += o.handoff_out;
  handoff_dropped += o.handoff_dropped;
  handoff_batches += o.handoff_batches;
  commands_run += o.commands_run;
  events_dropped += o.events_dropped;
  return *this;
}

ShardedMonitorService::Shard::Shard(std::size_t idx, const Params& params,
                                    std::uint16_t bind_port, bool reuse_port)
    : index(idx),
      commands(params.command_queue_capacity),
      events(params.event_queue_capacity) {
  staging.resize(params.shards);
  net::UdpSocket::Options opts;
  opts.port = bind_port;
  opts.reuse_port = reuse_port;
  opts.rcvbuf_bytes = params.rcvbuf_bytes;
  loop = std::make_unique<net::EventLoop>(opts);
  dispatcher = std::make_unique<service::Dispatcher>(loop->runtime());
  fd = std::make_unique<service::FdService>(loop->runtime(), params.service);
  auto* fdp = fd.get();
  dispatcher->on_heartbeat(
      [fdp](PeerId from, const net::HeartbeatMsg& m, Tick at) {
        fdp->handle_heartbeat(from, m, at);
      });
}

ShardedMonitorService::ShardedMonitorService(Params params)
    : params_(std::move(params)) {
  TWFD_CHECK_MSG(params_.shards >= 1, "need at least one shard");
  const bool reuse =
      params_.receive_mode == ReceiveMode::kReusePort && params_.shards > 1;

  // Shard 0 resolves the service port (possibly ephemeral); in reuse-port
  // mode every other shard joins it, in single-socket mode they bind
  // ephemeral send-side sockets.
  shards_.push_back(std::make_unique<Shard>(0, params_, params_.port, reuse));
  const std::uint16_t service_port = shards_[0]->loop->local_port();
  for (std::size_t i = 1; i < params_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, params_, reuse ? service_port : std::uint16_t{0}, reuse));
  }

  for (auto& sp : shards_) {
    Shard* s = sp.get();
    // The router replaces the Dispatcher's auto-installed handler: owned
    // datagrams go straight into the dispatcher, foreign ones are handed
    // off to their owner's command queue.
    s->loop->set_receive_handler(
        [this, s](PeerId from, std::span<const std::byte> data, Tick arrival) {
          route_datagram(*s, from, data, arrival);
        });
    // Foreign datagrams staged by the router are flushed once per receive
    // batch — one bulk command and at most one wake per destination shard.
    s->loop->set_batch_end_handler([this, s] { flush_handoffs(*s); });
    s->loop->set_wake_handler([this, s] { drain_commands(*s); });
  }

  {
    std::lock_guard lk(view_mu_);
    view_ = std::make_shared<const Snapshot>();
  }
}

ShardedMonitorService::~ShardedMonitorService() { stop(); }

std::uint16_t ShardedMonitorService::port() const {
  return shards_[0]->loop->local_port();
}

void ShardedMonitorService::start() {
  TWFD_CHECK_MSG(!running_, "service already started");
  running_ = true;
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    s->thread = std::thread([this, s] { worker_main(*s); });
  }
}

void ShardedMonitorService::stop() {
  if (!running_) return;
  // Stop flag first, then wake: the worker's wake handler re-checks the
  // flag, so the wake that follows the store can never be lost even if
  // run_until resets the loop's own stop latch.
  for (auto& sp : shards_) {
    sp->stop_requested.store(true, std::memory_order_release);
    sp->loop->stop();
  }
  for (auto& sp : shards_) {
    if (sp->thread.joinable()) sp->thread.join();
  }
  running_ = false;
  // Discard unexecuted commands — any waiter sees broken_promise rather
  // than hanging — then fold remaining transitions into the snapshot.
  for (auto& sp : shards_) {
    Command cmd;
    while (sp->commands.try_pop(cmd)) cmd = nullptr;
  }
  poll_events();
}

void ShardedMonitorService::worker_main(Shard& s) {
  while (!s.stop_requested.load(std::memory_order_acquire)) {
    s.loop->run_until(kTickInfinity);
  }
}

void ShardedMonitorService::drain_commands(Shard& s) {
  Command cmd;
  while (s.commands.try_pop(cmd)) {
    ++s.commands_run;
    cmd();
    cmd = nullptr;
  }
  if (s.stop_requested.load(std::memory_order_acquire)) s.loop->stop();
}

void ShardedMonitorService::route_datagram(Shard& s, PeerId from,
                                           std::span<const std::byte> data,
                                           Tick arrival) {
  const net::SocketAddress addr = s.loop->peer_address(from);
  const std::size_t owner = shard_of(addr, shards_.size());
  if (owner == s.index) {
    s.dispatcher->ingest(from, data, arrival);
    return;
  }
  // Hash hand-off: stage the raw bytes (plus the arrival stamp observed
  // here, so the owner's estimator sees the true receive time) for the
  // owning shard. The stage is flushed once per receive batch.
  HandoffStage& stage = s.staging[owner];
  HandoffStage::Item item;
  item.from = addr;
  item.arrival = arrival;
  item.offset = static_cast<std::uint32_t>(stage.bytes.size());
  item.length = static_cast<std::uint32_t>(data.size());
  stage.bytes.insert(stage.bytes.end(), data.begin(), data.end());
  stage.items.push_back(item);
}

void ShardedMonitorService::flush_handoffs(Shard& s) {
  for (std::size_t owner = 0; owner < s.staging.size(); ++owner) {
    HandoffStage& stage = s.staging[owner];
    if (stage.empty()) continue;
    const std::uint64_t count = stage.items.size();
    Shard& dst = *shards_[owner];
    // The whole stage moves into one command; the staging slot is left
    // empty (moved-from) and regrows next batch. Heartbeats are
    // loss-tolerant, so a full queue drops the batch (counted) instead of
    // blocking the receive path.
    Command cmd = [dstp = &dst, batch = std::move(stage)] {
      for (const HandoffStage::Item& it : batch.items) {
        dstp->loop->inject_datagram(
            it.from,
            std::span<const std::byte>(batch.bytes.data() + it.offset, it.length),
            it.arrival);
      }
    };
    stage = HandoffStage{};
    if (!dst.commands.try_push(std::move(cmd))) {
      s.handoff_dropped += count;
      continue;
    }
    s.handoff_out += count;
    ++s.handoff_batches;
    dst.loop->wake();
  }
}

void ShardedMonitorService::post(Shard& s, Command cmd) {
  while (!s.commands.try_push(std::move(cmd))) {
    // Queue full: nudge the shard to drain and retry. Control-plane
    // traffic is rare; this path only triggers under handoff floods.
    s.loop->wake();
    std::this_thread::yield();
  }
  s.loop->wake();
}

void ShardedMonitorService::publish_event(Shard& s, StatusEvent event) {
  if (!s.events.try_push(std::move(event))) {
    s.events_dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

ShardedMonitorService::SubscriptionId ShardedMonitorService::subscribe(
    const net::SocketAddress& peer, std::uint64_t sender_id, std::string app,
    const config::QosRequirements& qos) {
  TWFD_CHECK_MSG(running_, "subscribe() requires a started service");
  const std::size_t idx = shard_for(peer);
  Shard& s = *shards_[idx];
  const SubscriptionId gid = next_sub_id_.fetch_add(1, std::memory_order_relaxed);

  {
    // Seed the view before the shard can emit events for this id, so no
    // transition is ever applied to a missing entry.
    std::lock_guard lk(agg_mu_);
    state_[gid] = {gid, app, detect::Output::Trust, 0, idx};
    republish_locked();
  }

  auto prom =
      std::make_shared<std::promise<service::FdService::SubscriptionId>>();
  auto fut = prom->get_future();
  post(s, [this, sp = &s, peer, sender_id, app, qos, gid, prom] {
    try {
      prom->set_value(sp->fd->subscribe(
          sp->loop->add_peer(peer), sender_id, app, qos,
          [this, sp, gid](const service::FdService::StatusEvent& e) {
            publish_event(*sp, {gid, e.app, e.output, e.when, sp->index});
          }));
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });

  service::FdService::SubscriptionId local = 0;
  try {
    local = fut.get();  // rethrows infeasible-QoS from the shard thread
  } catch (...) {
    std::lock_guard lk(agg_mu_);
    state_.erase(gid);
    republish_locked();
    throw;
  }
  std::lock_guard lk(control_mu_);
  subs_[gid] = {idx, local};
  return gid;
}

void ShardedMonitorService::unsubscribe(SubscriptionId id) {
  TWFD_CHECK_MSG(running_, "unsubscribe() requires a started service");
  SubRef ref;
  {
    std::lock_guard lk(control_mu_);
    const auto it = subs_.find(id);
    if (it == subs_.end()) return;
    ref = it->second;
    subs_.erase(it);
  }
  Shard& s = *shards_[ref.shard];
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post(s, [sp = &s, local = ref.local, prom] {
    sp->fd->unsubscribe(local);
    prom->set_value();
  });
  fut.get();
  std::lock_guard lk(agg_mu_);
  state_.erase(id);
  republish_locked();
}

void ShardedMonitorService::reconfigure(const net::SocketAddress& peer) {
  TWFD_CHECK_MSG(running_, "reconfigure() requires a started service");
  Shard& s = *shards_[shard_for(peer)];
  auto prom = std::make_shared<std::promise<void>>();
  auto fut = prom->get_future();
  post(s, [sp = &s, peer, prom] {
    sp->fd->reconfigure(sp->loop->add_peer(peer));
    prom->set_value();
  });
  fut.get();
}

std::size_t ShardedMonitorService::poll_events(
    const std::function<void(const StatusEvent&)>& fn) {
  std::lock_guard lk(agg_mu_);
  std::size_t drained = 0;
  StatusEvent e;
  for (auto& sp : shards_) {
    while (sp->events.try_pop(e)) {
      ++drained;
      ++events_seen_;
      const auto it = state_.find(e.subscription);
      if (it != state_.end()) {
        it->second.output = e.output;
        it->second.since = e.when;
      }
      if (fn) fn(e);
    }
  }
  if (drained > 0) republish_locked();
  return drained;
}

void ShardedMonitorService::republish_locked() {
  auto snap = std::make_shared<Snapshot>();
  snap->entries.reserve(state_.size());
  for (const auto& [id, entry] : state_) snap->entries.push_back(entry);
  snap->events_seen = events_seen_;
  std::lock_guard lk(view_mu_);
  view_ = std::shared_ptr<const Snapshot>(std::move(snap));
}

ShardedMonitorService::ShardStats ShardedMonitorService::collect_stats_on_shard(
    Shard& s) const {
  ShardStats st;
  st.loop = s.loop->stats();
  st.dispatcher_heartbeats = s.dispatcher->heartbeat_count();
  st.dispatcher_malformed = s.dispatcher->malformed_count();
  st.service_heartbeats = s.fd->heartbeats_processed();
  st.handoff_out = s.handoff_out;
  st.handoff_dropped = s.handoff_dropped;
  st.handoff_batches = s.handoff_batches;
  st.commands_run = s.commands_run;
  st.events_dropped = s.events_dropped.load(std::memory_order_relaxed);
  return st;
}

std::vector<ShardedMonitorService::ShardStats> ShardedMonitorService::shard_stats() {
  std::vector<ShardStats> out(shards_.size());
  if (!running_) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      out[i] = collect_stats_on_shard(*shards_[i]);
    }
    return out;
  }
  std::vector<std::future<ShardStats>> futures;
  futures.reserve(shards_.size());
  for (auto& sp : shards_) {
    auto prom = std::make_shared<std::promise<ShardStats>>();
    futures.push_back(prom->get_future());
    Shard* s = sp.get();
    post(*s, [this, s, prom] { prom->set_value(collect_stats_on_shard(*s)); });
  }
  for (std::size_t i = 0; i < futures.size(); ++i) out[i] = futures[i].get();
  return out;
}

ShardedMonitorService::ShardStats ShardedMonitorService::merged_stats() {
  ShardStats total;
  for (const auto& st : shard_stats()) total += st;
  return total;
}

}  // namespace twfd::shard

// Sharded multi-threaded monitoring runtime (the host-wide FD service at
// scale).
//
// One ShardedMonitorService partitions monitored peers across N shard
// workers by consistent peer-hash. Each worker owns a private
// net::EventLoop + service::Dispatcher + service::FdService (per-peer
// SharedMarginDetector set) — there is NO shared mutable detector state;
// **shard ownership is the invariant**: a peer's estimator, timers and
// subscriptions are only ever touched by the shard thread that owns the
// peer.
//
// Cross-thread interaction is restricted to three mechanisms:
//   1. Control plane (subscribe/unsubscribe/reconfigure/stats): any
//      thread marshals a command onto the owning shard through a
//      lock-free MpscQueue + EventLoop::wake(), and blocks on a promise
//      for the result.
//   2. Receive path: with ReceiveMode::kReusePort every shard binds the
//      service port with SO_REUSEPORT and the kernel spreads inbound
//      flows; with kSingleSocket (the portable fallback) shard 0 owns the
//      only service socket. Either way, a datagram landing on a shard
//      that does not own its source peer is handed off — raw bytes and
//      arrival stamps staged per destination for the duration of one
//      receive batch, then marshalled to each owner's command queue as a
//      single bulk command (at most one wake per shard per batch) and
//      re-injected there, so decoding and detector updates stay
//      shard-confined.
//   3. Aggregation: Suspect/Trust transitions flow out through per-shard
//      MPSC event queues, drained by poll_events() into an immutable
//      global view snapshot; view() hands readers the current snapshot
//      pointer under a short mutex.
//
// Self-healing (Params::supervision): each worker loop advances a
// per-shard liveness counter once per slice; a supervisor thread watches
// those counters and the workers' exit flags. A worker that stops
// advancing is marked DEGRADED (surfaced in ShardStats/health() and as a
// subscription-0 health StatusEvent); a worker that exited — a command
// or handler threw — is additionally RESTARTED with capped exponential
// backoff: the shard's runtime (loop/dispatcher/service) is rebuilt on
// the same port, its subscriptions are re-seeded from the control
// registry, and a fresh worker thread is launched. The aggregated view
// keeps each subscription's last verdict across the restart, so verdict
// parity holds once the rebuilt detectors re-converge.
//
// Chaos (Params::chaos): when the plan has datagram faults, every shard
// routes inbound socket datagrams through a deterministic
// net::FaultInjector (per-shard seed derived from the plan seed) before
// dispatch — drop/duplicate/reorder/truncate/delay applied to real
// traffic for fault drills. Handed-off datagrams are injected once and
// never re-chaosed by the destination shard.
//
// See docs/runtime.md "Threading model" and "Self-healing and chaos
// testing" for the full rules, including shutdown ordering.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/runtime.hpp"
#include "config/qos_config.hpp"
#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "service/dispatcher.hpp"
#include "service/fd_service.hpp"

namespace twfd::shard {

/// Consistent peer -> shard mapping (splitmix64 over ip:port). Stable
/// across processes and runs, so every layer — receive routing, control
/// plane, external tooling — agrees on ownership.
[[nodiscard]] std::size_t shard_of(const net::SocketAddress& addr,
                                   std::size_t shard_count);

class ShardedMonitorService {
 public:
  enum class ReceiveMode {
    /// Every shard binds the service port with SO_REUSEPORT; the kernel
    /// spreads inbound flows across the shard sockets (a given remote
    /// consistently lands on one socket). Misrouted peers are handed off.
    kReusePort,
    /// Shard 0 owns the only service socket and hands every datagram off
    /// to its hash-owner. Portable fallback; shard 0 pays the recv cost.
    kSingleSocket,
  };

  /// Supervisor tuning. The worker heartbeat period bounds how long a
  /// worker may sit inside one run_until slice; the stall timeout is the
  /// watchdog bound — a worker whose liveness counter does not advance
  /// for that long is declared degraded.
  struct Supervision {
    bool enabled = true;
    /// Worker loop slice: liveness advances once per slice.
    Tick worker_heartbeat_period = ticks_from_ms(20);
    /// Supervisor poll cadence.
    Tick check_interval = ticks_from_ms(20);
    /// No liveness advance for this long => degraded (watchdog bound).
    Tick stall_timeout = ticks_from_ms(500);
    /// Restart backoff ladder for crashed workers (doubles per restart,
    /// resets once the shard reports healthy again).
    Tick restart_backoff_min = ticks_from_ms(50);
    Tick restart_backoff_max = ticks_from_sec(2);
  };

  struct Params {
    std::size_t shards = 4;
    /// Service port remotes send heartbeats to (0 = ephemeral, resolved
    /// at construction; see port()).
    std::uint16_t port = 0;
    ReceiveMode receive_mode = ReceiveMode::kReusePort;
    /// SO_RCVBUF request per shard socket (0 = kernel default).
    int rcvbuf_bytes = 1 << 20;
    std::size_t command_queue_capacity = 1024;
    std::size_t event_queue_capacity = 1 << 14;
    Supervision supervision{};
    /// Pin each shard worker to its own core (shard i -> the i-th CPU the
    /// process may run on). Skipped gracefully — workers run unpinned and
    /// ShardStats::pinned stays 0 — when the host has fewer usable cores
    /// than shards, the platform lacks pthread_setaffinity_np, or the
    /// affinity call is refused. Survives supervisor restarts (the pin is
    /// applied at worker-thread entry).
    bool pin_cores = false;
    /// Datagram half of a fault plan, applied per shard to inbound
    /// traffic (RX chaos). Inactive unless any_datagram_faults().
    net::FaultPlan chaos{};
    /// Per-shard FdService tuning (windows, assumed network, slab
    /// pre-sizing via expected_peers, ...). `service.qos_tracker` is
    /// shared by every shard (the tracker is thread-safe per handle);
    /// `service.obs_heartbeats`/`obs_cell` are overwritten per shard
    /// when `registry` is set.
    service::FdService::Params service{};
    /// Optional obs registry: when set, the service registers a live
    /// twfd_shard_heartbeats_total ShardedCounter with one cell per
    /// shard (written relaxed on the heartbeat path) and wires it into
    /// each shard's FdService. Must outlive the service.
    obs::Registry* registry = nullptr;
  };

  using SubscriptionId = std::uint64_t;

  /// Subscription id carried by shard health events: Suspect = the named
  /// shard is degraded (stalled or crashed), Trust = it recovered. The
  /// event's `app` is "shard-N". Health events flow through poll_events()
  /// like verdicts but never appear in the snapshot's entry list.
  static constexpr SubscriptionId kHealthSubscription = 0;

  /// A Suspect/Trust transition, stamped with the owning shard.
  struct StatusEvent {
    SubscriptionId subscription = 0;
    std::string app;
    detect::Output output = detect::Output::Trust;
    Tick when = 0;
    std::size_t shard = 0;
  };

  /// Immutable global view published by poll_events(); readers obtain
  /// the current snapshot pointer via view().
  struct Snapshot {
    struct Entry {
      SubscriptionId subscription = 0;
      std::string app;
      detect::Output output = detect::Output::Trust;
      Tick since = 0;  ///< instant of the last transition (0 = none yet)
      std::size_t shard = 0;
    };
    std::vector<Entry> entries;  ///< ordered by subscription id
    std::uint64_t events_seen = 0;
  };

  /// Per-shard observability, gathered race-free by marshalling a stats
  /// command onto each shard (or read directly once stopped). A restart
  /// rebuilds the shard runtime, so the shard-confined counters (loop,
  /// dispatcher, service, handoff) restart from zero; the supervision
  /// counters are service-owned atomics and survive.
  struct ShardStats {
    net::EventLoop::Stats loop;
    std::uint64_t dispatcher_heartbeats = 0;
    std::uint64_t dispatcher_malformed = 0;
    std::uint64_t service_heartbeats = 0;
    std::uint64_t handoff_out = 0;      ///< datagrams forwarded to siblings
    std::uint64_t handoff_dropped = 0;  ///< forwards lost: sibling queue full
    /// Hand-off flush commands pushed (one per destination shard per
    /// receive batch). handoff_out / handoff_batches is the wake-
    /// coalescing factor the batched receive path buys.
    std::uint64_t handoff_batches = 0;
    std::uint64_t commands_run = 0;
    std::uint64_t events_dropped = 0;   ///< transitions lost: event queue full
    // --- supervision / control-plane resilience ---
    std::uint64_t post_retries = 0;   ///< control pushes that found the queue full
    std::uint64_t post_stalls = 0;    ///< posts abandoned: queue wedged
    std::uint64_t restarts = 0;       ///< supervisor rebuilds of this shard
    std::uint64_t stalls_detected = 0;  ///< degraded-while-alive detections
    std::uint64_t resubscribed = 0;   ///< subscriptions re-seeded by restarts
    std::uint64_t degraded = 0;       ///< gauge: 1 while marked degraded
    std::uint64_t pinned = 0;         ///< gauge: 1 if the worker is core-pinned
    /// RX chaos accounting (all zero unless Params::chaos is active).
    net::FaultStats chaos;

    ShardStats& operator+=(const ShardStats& o);
  };

  /// Lock-free supervision snapshot for one shard (any thread).
  struct ShardHealth {
    bool degraded = false;
    bool worker_exited = false;
    std::uint64_t restarts = 0;
    std::uint64_t stalls_detected = 0;
    std::uint64_t liveness = 0;
  };

  /// Test seam: makes the shard worker misbehave on purpose so the
  /// supervisor path can be exercised deterministically.
  enum class WorkerFault {
    kCrash,  ///< the worker thread throws and exits
    kStall,  ///< the worker thread sleeps for `stall_for` without serving
  };

  explicit ShardedMonitorService(Params params);
  ~ShardedMonitorService();

  ShardedMonitorService(const ShardedMonitorService&) = delete;
  ShardedMonitorService& operator=(const ShardedMonitorService&) = delete;

  /// Spawns the shard worker threads (and the supervisor when enabled).
  /// Call before any control-plane op.
  void start();
  /// Stops the supervisor, then every shard loop; joins the workers,
  /// discards unexecuted commands (their waiters see broken_promise) and
  /// drains remaining events into the snapshot. Idempotent. Do not race
  /// control-plane calls against stop().
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// The service port remotes send heartbeats to. In kReusePort mode all
  /// shards share it; in kSingleSocket mode it is shard 0's socket.
  /// Stable across shard restarts.
  [[nodiscard]] std::uint16_t port() const noexcept { return service_port_; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t shard_for(const net::SocketAddress& addr) const {
    return shard_of(addr, shards_.size());
  }

  /// Prior-incarnation verdict used to prime a subscription re-created
  /// from a crash-persisted seed (snapshot restore, shard re-seed). The
  /// aggregated view starts at `output`/`since` and the shard-local
  /// detector is primed to match, so a restored subscription emits only
  /// the NET transition relative to the previous incarnation — no
  /// duplicate Suspect for a peer that was already down, exactly one
  /// Trust when a suspected peer turns out to be alive.
  struct Initial {
    detect::Output output = detect::Output::Trust;
    Tick since = 0;
  };

  /// Portable description of one live subscription joined with its
  /// current verdict — the unit of crash persistence. export_seeds()
  /// captures every subscription; import_seed() re-creates one with the
  /// verdict primed (see Initial).
  struct SubscriptionSeed {
    net::SocketAddress peer;
    std::uint64_t sender_id = 0;
    std::string app;
    config::QosRequirements qos;
    detect::Output last = detect::Output::Trust;
    Tick since = 0;
  };

  // --- Control plane (any thread; blocks until the owning shard acks) ---

  /// Registers `app` to monitor the process `sender_id` reachable at
  /// `peer` with QoS tuple `qos`. Throws std::logic_error (from the
  /// owning shard) when the tuple is infeasible, std::runtime_error when
  /// the owning shard's command queue is wedged. `initial` primes the
  /// verdict for seeds restored from a snapshot (defaults to Trust — the
  /// cold-subscribe behaviour, unchanged).
  SubscriptionId subscribe(const net::SocketAddress& peer, std::uint64_t sender_id,
                           std::string app, const config::QosRequirements& qos);
  SubscriptionId subscribe(const net::SocketAddress& peer, std::uint64_t sender_id,
                           std::string app, const config::QosRequirements& qos,
                           Initial initial);
  void unsubscribe(SubscriptionId id);

  /// Snapshot of every live subscription joined with its current view
  /// verdict, in subscription-id order. Safe from any thread while the
  /// service runs (control registry + published view; no shard marshal).
  [[nodiscard]] std::vector<SubscriptionSeed> export_seeds();
  /// Re-creates a persisted subscription with its verdict primed.
  /// Equivalent to subscribe(peer, ..., {seed.last, seed.since}).
  SubscriptionId import_seed(const SubscriptionSeed& seed);
  /// Forces a reconfiguration pass for `peer` on its owning shard.
  void reconfigure(const net::SocketAddress& peer);

  // --- Aggregation ---

  /// Drains every shard's event queue into the global view and publishes
  /// a fresh snapshot; `fn` (optional) observes each event in shard-major
  /// order. Serialized internally; returns the number of events drained.
  std::size_t poll_events(const std::function<void(const StatusEvent&)>& fn = {});

  /// Standing per-event export hook, invoked from poll_events() for
  /// every drained event (health events included), before the per-call
  /// `fn`. This is the federation tier's transition feed: the FDaaS
  /// server is the sole poll_events() caller in the live runtime, so
  /// the listener runs on the API thread. Set before start(); not
  /// synchronized against concurrent poll_events() calls.
  void set_event_listener(std::function<void(const StatusEvent&)> listener) {
    event_listener_ = std::move(listener);
  }

  /// Latest published snapshot (never null after construction). Copies
  /// the current pointer under a short mutex — held only for the copy,
  /// never while a snapshot is being built — so the caller reads the
  /// immutable Snapshot without further synchronisation.
  [[nodiscard]] std::shared_ptr<const Snapshot> view() const {
    std::lock_guard lk(view_mu_);
    return view_;
  }

  // --- Supervision ---

  /// Lock-free health read for one shard (any thread, any time).
  [[nodiscard]] ShardHealth health(std::size_t shard) const;
  /// Number of shards currently marked degraded.
  [[nodiscard]] std::size_t degraded_count() const;

  /// Injects a worker fault (test seam; see WorkerFault). Asynchronous:
  /// the fault lands when the worker next drains its command queue.
  void inject_worker_fault(std::size_t shard, WorkerFault fault,
                           Tick stall_for = 0);

  /// Race-free per-shard counters (marshalled; see ShardStats). A shard
  /// whose worker is dead or wedged answers with its supervision atomics
  /// only (shard-confined counters read as zero) after a bounded wait.
  [[nodiscard]] std::vector<ShardStats> shard_stats();
  /// Element-wise sum of shard_stats().
  [[nodiscard]] ShardStats merged_stats();

 private:
  using Command = std::function<void()>;

  /// Foreign datagrams staged during one receive batch, bound for one
  /// destination shard: raw bytes in a flat buffer plus per-datagram
  /// (source, extent, arrival) records. Flushed as ONE command and at
  /// most one wake at batch end; the flush moves the buffers into the
  /// command closure, so marshalling costs one allocation per destination
  /// shard per batch rather than one per datagram.
  struct HandoffStage {
    struct Item {
      net::SocketAddress from;
      Tick arrival = 0;
      std::uint32_t offset = 0;  ///< into `bytes`
      std::uint32_t length = 0;
    };
    std::vector<std::byte> bytes;
    std::vector<Item> items;

    [[nodiscard]] bool empty() const noexcept { return items.empty(); }
  };

  struct Shard {
    std::size_t index = 0;
    // Rebind target for restarts (the resolved port, not the requested
    // one, so an ephemeral service port stays stable across rebuilds).
    std::uint16_t bind_port = 0;
    bool reuse_port = false;
    std::unique_ptr<net::EventLoop> loop;
    std::unique_ptr<service::Dispatcher> dispatcher;
    std::unique_ptr<service::FdService> fd;
    /// RX chaos wrapper (null unless Params::chaos is active).
    std::unique_ptr<net::FaultInjector> chaos;
    MpscQueue<Command> commands;
    MpscQueue<StatusEvent> events;
    std::atomic<bool> stop_requested{false};
    // Shard-thread-only: per-destination hand-off staging for the batch
    // currently being drained (index = destination shard; own slot unused).
    std::vector<HandoffStage> staging;
    // Shard-thread-only: set while replaying a hand-off batch so injected
    // datagrams are not run through the chaos plan a second time.
    bool in_handoff = false;
    // Shard-thread-only counters (published via the stats command).
    std::uint64_t handoff_out = 0;
    std::uint64_t handoff_dropped = 0;
    std::uint64_t handoff_batches = 0;
    std::uint64_t commands_run = 0;
    std::atomic<std::uint64_t> events_dropped{0};
    // --- supervision state (service-owned atomics; survive restarts) ---
    std::atomic<std::uint64_t> liveness{0};  ///< advanced once per worker slice
    std::atomic<bool> worker_exited{false};
    std::atomic<bool> degraded{false};
    std::atomic<std::uint64_t> restarts{0};
    std::atomic<std::uint64_t> stalls_detected{0};
    std::atomic<std::uint64_t> post_retries{0};
    std::atomic<std::uint64_t> post_stalls{0};
    std::atomic<std::uint64_t> resubscribed{0};
    std::atomic<bool> pinned{false};  ///< worker is affinity-pinned right now
    /// Guards the runtime pointers (loop/dispatcher/fd/chaos) against the
    /// supervisor swapping them during a restart while another thread
    /// wakes or reads the shard. The worker thread itself never takes it:
    /// a swap only happens after the worker exited and was joined.
    std::mutex swap_mu;
    std::thread thread;

    Shard(std::size_t idx, const Params& params);
  };

  void build_shard_runtime(Shard& s);
  /// Applies Params::pin_cores at worker entry; no-op skip when the host
  /// cannot honour it (see the Params field).
  void maybe_pin(Shard& s);
  void worker_main(Shard& s);
  void drain_commands(Shard& s);
  void route_datagram(Shard& s, const net::SocketAddress& from,
                      std::span<const std::byte> data, Tick arrival);
  void flush_handoffs(Shard& s);
  void post(Shard& s, Command cmd);
  /// wake() under swap_mu: safe against a concurrent runtime rebuild.
  void wake_shard(Shard& s);
  void publish_event(Shard& s, StatusEvent event);
  void republish_locked();
  [[nodiscard]] ShardStats collect_stats_on_shard(Shard& s) const;
  [[nodiscard]] ShardStats collect_supervision_stats(Shard& s) const;

  // --- supervisor machinery ---
  void supervisor_main();
  /// Joins the exited worker, rebuilds the shard runtime on the same
  /// port, re-seeds its subscriptions from the control registry, and
  /// relaunches the worker thread. Returns false when the rebuild itself
  /// failed (e.g. rebind raced a port thief); the caller backs off.
  bool restart_shard(Shard& s);
  void emit_health(Shard& s, detect::Output output);

  Params params_;
  obs::ShardedCounter* live_heartbeats_ = nullptr;  // set iff Params::registry
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint16_t service_port_ = 0;
  bool running_ = false;

  // Control-plane registry: global subscription id -> owning shard, the
  // shard-local FdService id, and everything needed to re-seed the
  // subscription when the owning shard is rebuilt after a crash.
  struct SubRef {
    std::size_t shard = 0;
    service::FdService::SubscriptionId local = 0;
    net::SocketAddress peer;
    std::uint64_t sender_id = 0;
    std::string app;
    config::QosRequirements qos;
  };
  std::mutex control_mu_;
  std::map<SubscriptionId, SubRef> subs_;
  std::atomic<SubscriptionId> next_sub_id_{1};

  // Supervisor thread: woken early for shutdown via the cv.
  std::thread supervisor_;
  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool sup_stop_ = false;

  // Aggregation state: agg_mu_ serializes the single logical consumer of
  // the per-shard event queues; view_mu_ guards only the published
  // pointer and is held for a pointer copy, never while building a
  // snapshot. (std::atomic<std::shared_ptr> would make readers wait-free,
  // but libstdc++'s _Sp_atomic releases its embedded spin-lock with
  // relaxed ordering, which ThreadSanitizer cannot model — concurrent
  // load/store would report a false race.)
  std::mutex agg_mu_;
  std::map<SubscriptionId, Snapshot::Entry> state_;
  std::uint64_t events_seen_ = 0;
  std::function<void(const StatusEvent&)> event_listener_;
  mutable std::mutex view_mu_;
  std::shared_ptr<const Snapshot> view_;
};

}  // namespace twfd::shard

// Minimal HTTP/1.0 scrape endpoint serving a Registry.
//
// `GET /metrics` (or `GET /`) answers 200 with the Prometheus text
// exposition (v0.0.4) of `Registry::render_text()`; any other path is
// 404, anything that isn't a GET is 400. Connections are closed after
// one response (HTTP/1.0, `Connection: close`), which is exactly what
// `curl` and a Prometheus scraper do anyway.
//
// The server owns a private net::EventLoop plus one thread: the
// listener fd and every session fd are watched non-blockingly, so a
// stalled scraper can never wedge the daemon — it just times out and
// gets closed. The daemons pass the same Registry their runtime writes
// into; all metric reads are relaxed-atomic snapshots, so scraping
// never takes a lock the heartbeat path could contend on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/time.hpp"
#include "net/event_loop.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"

namespace twfd::obs {

class ScrapeServer {
 public:
  struct Params {
    std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
    std::size_t max_sessions = 32;
    std::size_t max_request_bytes = 8192;
    Tick session_timeout = ticks_from_sec(10);
  };

  /// Binds the listener immediately (throws std::system_error on
  /// failure, e.g. port in use) but serves nothing until start().
  ScrapeServer(Registry& registry, Params params);
  ~ScrapeServer();
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  void start();
  void stop();

  /// The bound TCP port; valid from construction.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Completed /metrics responses (any thread; tests poll this).
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    net::TcpConn conn;
    std::string rx;
    std::string tx;
    std::size_t tx_sent = 0;
    bool responding = false;
    Tick deadline = 0;
  };

  void run();
  void on_listener_readable();
  void on_session_event(int fd, unsigned events);
  void respond(Session& s);
  void close_session(int fd);
  void arm_sweep_timer();

  Registry& registry_;
  Params params_;
  net::TcpListener listener_;
  std::uint16_t port_ = 0;
  std::unique_ptr<net::EventLoop> loop_;
  std::map<int, Session> sessions_;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
  std::atomic<std::uint64_t> scrapes_{0};
  Counter* requests_total_ = nullptr;
  Counter* errors_total_ = nullptr;
};

}  // namespace twfd::obs

#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>

namespace twfd::obs {
namespace {

/// Shortest round-trippable rendering for metric values and `le`
/// bounds; Prometheus spec uses Go-style "+Inf"/"-Inf"/"NaN".
std::string format_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g rendering when it round-trips exactly.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%.10g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

void validate_bounds(const std::vector<double>& bounds) {
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (std::isnan(bounds[i]) || std::isinf(bounds[i])) {
      throw std::logic_error("histogram bounds must be finite (implicit +Inf is added)");
    }
    if (i > 0 && bounds[i] <= bounds[i - 1]) {
      throw std::logic_error("histogram bounds must be strictly ascending");
    }
  }
}

std::size_t bucket_index(const std::vector<double>& bounds, double v) noexcept {
  std::size_t i = 0;
  while (i < bounds.size() && v > bounds[i]) ++i;
  return i;  // bounds.size() = +Inf bucket
}

void atomic_add_double(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  validate_bounds(bounds_);
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

ShardedCounter::ShardedCounter(std::size_t cells)
    : n_cells_(cells == 0 ? 1 : cells), cells_(std::make_unique<Cell[]>(n_cells_)) {}

std::uint64_t ShardedCounter::value() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n_cells_; ++i) {
    total += cells_[i].v.load(std::memory_order_relaxed);
  }
  return total;
}

ShardedHistogram::ShardedHistogram(std::vector<double> bounds, std::size_t cells)
    : bounds_(std::move(bounds)), cells_(cells == 0 ? 1 : cells) {
  validate_bounds(bounds_);
  for (auto& cell : cells_) {
    cell.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  }
}

void ShardedHistogram::observe(std::size_t cell, double v) noexcept {
  Cell& c = cells_[cell];
  c.buckets[bucket_index(bounds_, v)].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(c.sum, v);
}

HistogramSnapshot ShardedHistogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& cell : cells_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.buckets[i] += cell.buckets[i].load(std::memory_order_relaxed);
    }
    s.count += cell.count.load(std::memory_order_relaxed);
    s.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return s;
}

std::string label_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string make_labels(
    std::initializer_list<std::pair<std::string_view, std::string_view>> kvs) {
  std::string out;
  for (const auto& [k, v] : kvs) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    out += label_escape(v);
    out += '"';
  }
  return out;
}

Registry::Family& Registry::family_locked(std::string_view name, MetricType type,
                                          std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.type = type;
    it->second.help = std::string(help);
  } else if (it->second.type != type) {
    throw std::logic_error("metric family '" + std::string(name) + "' registered as " +
                           type_name(it->second.type) + ", requested as " + type_name(type));
  }
  return it->second;
}

Registry::Instance* Registry::find_locked(Family& fam, std::string_view labels) {
  const auto it = fam.index.find(labels);
  return it == fam.index.end() ? nullptr : it->second->get();
}

Registry::Instance& Registry::add_locked(Family& fam, std::unique_ptr<Instance> inst) {
  fam.instances.push_back(std::move(inst));
  const auto pos = std::prev(fam.instances.end());
  fam.index.emplace(std::string_view((*pos)->labels), pos);
  return **pos;
}

Counter& Registry::counter(std::string_view name, std::string_view help, std::string labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_locked(name, MetricType::kCounter, help);
  if (Instance* inst = find_locked(fam, labels)) return std::get<Counter>(inst->metric);
  return std::get<Counter>(
      add_locked(fam, std::make_unique<Instance>(std::in_place_type<Counter>, std::move(labels)))
          .metric);
}

Gauge& Registry::gauge(std::string_view name, std::string_view help, std::string labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_locked(name, MetricType::kGauge, help);
  if (Instance* inst = find_locked(fam, labels)) return std::get<Gauge>(inst->metric);
  return std::get<Gauge>(
      add_locked(fam, std::make_unique<Instance>(std::in_place_type<Gauge>, std::move(labels)))
          .metric);
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, std::string labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_locked(name, MetricType::kHistogram, help);
  if (Instance* inst = find_locked(fam, labels)) {
    auto& h = std::get<Histogram>(inst->metric);
    if (h.bounds() != bounds) {
      throw std::logic_error("histogram '" + std::string(name) +
                             "' re-registered with different bounds");
    }
    return h;
  }
  return std::get<Histogram>(
      add_locked(fam, std::make_unique<Instance>(std::in_place_type<Histogram>,
                                                 std::move(labels), std::move(bounds)))
          .metric);
}

ShardedCounter& Registry::sharded_counter(std::string_view name, std::string_view help,
                                          std::size_t cells, std::string labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_locked(name, MetricType::kCounter, help);
  if (Instance* inst = find_locked(fam, labels)) return std::get<ShardedCounter>(inst->metric);
  return std::get<ShardedCounter>(
      add_locked(fam, std::make_unique<Instance>(std::in_place_type<ShardedCounter>,
                                                 std::move(labels), cells))
          .metric);
}

ShardedHistogram& Registry::sharded_histogram(std::string_view name, std::string_view help,
                                              std::vector<double> bounds, std::size_t cells,
                                              std::string labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& fam = family_locked(name, MetricType::kHistogram, help);
  if (Instance* inst = find_locked(fam, labels)) return std::get<ShardedHistogram>(inst->metric);
  return std::get<ShardedHistogram>(
      add_locked(fam, std::make_unique<Instance>(std::in_place_type<ShardedHistogram>,
                                                 std::move(labels), std::move(bounds), cells))
          .metric);
}

void Registry::declare(std::string_view name, MetricType type, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  family_locked(name, type, help);
}

bool Registry::remove(std::string_view name, std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = families_.find(name);
  if (fit == families_.end()) return false;
  Family& fam = fit->second;
  const auto it = fam.index.find(labels);
  if (it == fam.index.end()) return false;
  const auto pos = it->second;
  fam.index.erase(it);  // key views the instance's labels: erase first
  fam.instances.erase(pos);
  return true;
}

void Registry::add_collect_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  hooks_.push_back(std::move(hook));
}

namespace {

void append_sample(std::string& out, std::string_view name, std::string_view labels,
                   std::string_view extra_label, const std::string& value) {
  out += name;
  if (!labels.empty() || !extra_label.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra_label.empty()) out += ',';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

void append_histogram(std::string& out, std::string_view name, std::string_view labels,
                      const HistogramSnapshot& snap) {
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= snap.bounds.size(); ++i) {
    cumulative += snap.buckets[i];
    const std::string le =
        i < snap.bounds.size() ? format_value(snap.bounds[i]) : std::string("+Inf");
    append_sample(out, std::string(name) + "_bucket", labels, "le=\"" + le + "\"",
                  std::to_string(cumulative));
  }
  append_sample(out, std::string(name) + "_sum", labels, {}, format_value(snap.sum));
  append_sample(out, std::string(name) + "_count", labels, {}, std::to_string(snap.count));
}

}  // namespace

std::string Registry::render_text() {
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hooks = hooks_;
  }
  for (const auto& hook : hooks) hook();

  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    out += "# TYPE " + name + " " + std::string(type_name(fam.type)) + "\n";
    for (const auto& inst : fam.instances) {
      std::visit(
          [&](const auto& metric) {
            using M = std::decay_t<decltype(metric)>;
            if constexpr (std::is_same_v<M, Counter> || std::is_same_v<M, ShardedCounter>) {
              append_sample(out, name, inst->labels, {}, std::to_string(metric.value()));
            } else if constexpr (std::is_same_v<M, Gauge>) {
              append_sample(out, name, inst->labels, {}, format_value(metric.value()));
            } else {
              append_histogram(out, name, inst->labels, metric.snapshot());
            }
          },
          inst->metric);
    }
  }
  return out;
}

}  // namespace twfd::obs

#include "obs/qos_tracker.hpp"

#include <algorithm>
#include <string>

namespace twfd::obs {

namespace {
constexpr std::string_view kDetection = "twfd_qos_detection_time_seconds";
constexpr std::string_view kDetectionBound = "twfd_qos_detection_time_bound_seconds";
constexpr std::string_view kMistakeRate = "twfd_qos_mistake_rate";
constexpr std::string_view kMistakeRateBound = "twfd_qos_mistake_rate_bound";
constexpr std::string_view kMistakeDuration = "twfd_qos_mistake_duration_seconds";
constexpr std::string_view kMistakeDurationBound = "twfd_qos_mistake_duration_bound_seconds";
constexpr std::string_view kSuspected = "twfd_qos_suspected";
constexpr std::string_view kMistakes = "twfd_qos_mistakes_total";
constexpr std::string_view kViolations = "twfd_qos_violations_total";
}  // namespace

struct QosTracker::Entry {
  std::string labels;
  Gauge* detection = nullptr;
  Gauge* mistake_rate = nullptr;
  Gauge* mistake_duration = nullptr;
  Gauge* suspected = nullptr;
  Counter* mistakes = nullptr;
  Counter* violations = nullptr;
  double td_bound_s = 0.0;
  double tmr_bound = 0.0;  // mistakes per second
  double tm_bound_s = 0.0;

  // Writer-owned (the subscription's shard thread):
  Tick suspect_since = 0;  // 0 = currently trusting

  // Shared between the writer and refresh(): recent mistake end times.
  std::mutex mu;
  std::vector<Tick> mistake_ends;
  Tick start = 0;
};

QosTracker::QosTracker(Registry& registry, Params params)
    : registry_(registry), params_(params) {
  // Families render (with # HELP / # TYPE) even before the first
  // subscription, so scrape consumers can count on their presence.
  registry_.declare(kDetection, MetricType::kGauge,
                    "Last measured detection-time sample (suspect - last heartbeat arrival).");
  registry_.declare(kDetectionBound, MetricType::kGauge,
                    "Negotiated detection-time upper bound T_D^U.");
  registry_.declare(kMistakeRate, MetricType::kGauge,
                    "Measured mistake rate over the sliding window, per second.");
  registry_.declare(kMistakeRateBound, MetricType::kGauge,
                    "Negotiated mistake-rate upper bound lambda_MR^U, per second.");
  registry_.declare(kMistakeDuration, MetricType::kGauge,
                    "Last measured mistake duration (suspect to trust), seconds.");
  registry_.declare(kMistakeDurationBound, MetricType::kGauge,
                    "Negotiated mistake-duration upper bound T_M^U.");
  registry_.declare(kSuspected, MetricType::kGauge,
                    "1 while the subscription currently suspects its peer.");
  registry_.declare(kMistakes, MetricType::kCounter,
                    "Suspect->Trust pairs observed (every one counts as a mistake).");
  registry_.declare(kViolations, MetricType::kCounter,
                    "Measured QoS values that exceeded their negotiated bound.");
}

QosTracker::~QosTracker() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    for (std::string_view name : {kDetection, kDetectionBound, kMistakeRate, kMistakeRateBound,
                                  kMistakeDuration, kMistakeDurationBound, kSuspected, kMistakes,
                                  kViolations}) {
      registry_.remove(name, e->labels);
    }
  }
}

QosTracker::Handle QosTracker::track(std::string_view app, std::uint64_t peer_id,
                                     const config::QosRequirements& qos, Tick start) {
  auto entry = std::make_unique<Entry>();
  Entry& e = *entry;
  std::string seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = std::to_string(next_seq_++);
  }
  e.labels = make_labels({{"app", app}, {"peer", std::to_string(peer_id)}, {"sub", seq}});
  e.td_bound_s = qos.td_upper_s;
  e.tmr_bound = qos.tmr_upper_per_s;
  e.tm_bound_s = qos.tm_upper_s;
  e.start = start;

  e.detection = &registry_.gauge(
      kDetection, "Last measured detection-time sample (suspect - last heartbeat arrival).",
      e.labels);
  e.mistake_rate = &registry_.gauge(
      kMistakeRate, "Measured mistake rate over the sliding window, per second.", e.labels);
  e.mistake_duration = &registry_.gauge(
      kMistakeDuration, "Last measured mistake duration (suspect to trust), seconds.", e.labels);
  e.suspected = &registry_.gauge(
      kSuspected, "1 while the subscription currently suspects its peer.", e.labels);
  e.mistakes = &registry_.counter(
      kMistakes, "Suspect->Trust pairs observed (every one counts as a mistake).", e.labels);
  e.violations = &registry_.counter(
      kViolations, "Measured QoS values that exceeded their negotiated bound.", e.labels);
  registry_.gauge(kDetectionBound, "Negotiated detection-time upper bound T_D^U.", e.labels)
      .set(qos.td_upper_s);
  registry_
      .gauge(kMistakeRateBound, "Negotiated mistake-rate upper bound lambda_MR^U, per second.",
             e.labels)
      .set(qos.tmr_upper_per_s);
  registry_
      .gauge(kMistakeDurationBound, "Negotiated mistake-duration upper bound T_M^U.", e.labels)
      .set(qos.tm_upper_s);

  Handle h = entry.get();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  return h;
}

void QosTracker::untrack(Handle h) {
  if (h == nullptr) return;
  std::unique_ptr<Entry> owned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [h](const auto& e) { return e.get() == h; });
    if (it == entries_.end()) return;
    owned = std::move(*it);
    entries_.erase(it);
  }
  for (std::string_view name : {kDetection, kDetectionBound, kMistakeRate, kMistakeRateBound,
                                kMistakeDuration, kMistakeDurationBound, kSuspected, kMistakes,
                                kViolations}) {
    registry_.remove(name, owned->labels);
  }
}

void QosTracker::record_suspect(Handle h, Tick when, Tick last_heartbeat_arrival) {
  if (h == nullptr) return;
  Entry& e = *h;
  if (e.suspect_since != 0) return;  // already suspecting
  e.suspect_since = when == 0 ? 1 : when;
  e.suspected->set(1.0);
  if (last_heartbeat_arrival > 0 && when >= last_heartbeat_arrival) {
    const double sample_s = to_seconds(when - last_heartbeat_arrival);
    e.detection->set(sample_s);
    if (sample_s > e.td_bound_s) {
      e.violations->add();
      total_violations_.add();
    }
  }
}

void QosTracker::record_trust(Handle h, Tick when) {
  if (h == nullptr) return;
  Entry& e = *h;
  if (e.suspect_since == 0) return;  // spurious (initial Trust)
  const Tick since = e.suspect_since;
  e.suspect_since = 0;
  e.suspected->set(0.0);

  const double duration_s = to_seconds(std::max<Tick>(0, when - since));
  e.mistake_duration->set(duration_s);
  e.mistakes->add();
  if (duration_s > e.tm_bound_s) {
    e.violations->add();
    total_violations_.add();
  }

  std::lock_guard<std::mutex> lock(e.mu);
  e.mistake_ends.push_back(when);
  if (e.mistake_ends.size() > params_.max_mistakes_kept) {
    e.mistake_ends.erase(e.mistake_ends.begin(),
                         e.mistake_ends.begin() +
                             static_cast<std::ptrdiff_t>(e.mistake_ends.size() -
                                                         params_.max_mistakes_kept));
  }
  recompute_rate_locked(e, when);
  if (e.mistake_rate->value() > e.tmr_bound) {
    e.violations->add();
    total_violations_.add();
  }
}

void QosTracker::recompute_rate_locked(Entry& e, Tick now) {
  const Tick cutoff = tick_add_sat(now, -params_.window);
  std::size_t in_window = 0;
  for (Tick t : e.mistake_ends) {
    if (t > cutoff) ++in_window;
  }
  // Effective window: don't divide by a horizon the entry hasn't lived
  // through yet (a mistake in the first minute of a 5-minute window is
  // 1/60s, not 1/300s). Floor at 1s to keep early samples finite.
  Tick lived = now - e.start;
  if (lived > params_.window) lived = params_.window;
  if (lived < ticks_from_sec(1)) lived = ticks_from_sec(1);
  e.mistake_rate->set(static_cast<double>(in_window) / to_seconds(lived));
}

void QosTracker::refresh(Tick now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : entries_) {
    std::lock_guard<std::mutex> elock(entry->mu);
    recompute_rate_locked(*entry, now);
  }
}

std::size_t QosTracker::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace twfd::obs

#include "obs/scrape_server.hpp"

#include <span>
#include <utility>
#include <vector>

namespace twfd::obs {

namespace {

/// First-line parse of an HTTP request. Returns {method, path}.
std::pair<std::string_view, std::string_view> parse_request_line(std::string_view head) {
  const std::size_t eol = head.find("\r\n");
  std::string_view line = eol == std::string_view::npos ? head : head.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return {line, {}};
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view path = sp2 == std::string_view::npos ? line.substr(sp1 + 1)
                                                        : line.substr(sp1 + 1, sp2 - sp1 - 1);
  return {line.substr(0, sp1), path};
}

std::string http_response(int code, std::string_view reason, std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(Registry& registry, Params params)
    : registry_(registry),
      params_(params),
      listener_(net::TcpListener::Options{.port = params.port, .backlog = 16}) {
  port_ = listener_.local_port();
  loop_ = std::make_unique<net::EventLoop>(static_cast<std::uint16_t>(0));
  requests_total_ = &registry_.counter("twfd_scrape_requests_total",
                                       "HTTP requests answered by the scrape endpoint.");
  errors_total_ = &registry_.counter(
      "twfd_scrape_errors_total",
      "Scrape requests rejected (bad method/path/overflow) or timed out.");
}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::start() {
  if (running_) return;
  running_ = true;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { run(); });
}

void ScrapeServer::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  loop_->stop();
  if (thread_.joinable()) thread_.join();
  running_ = false;
}

void ScrapeServer::run() {
  loop_->watch_fd(listener_.fd(), net::kFdRead, [this](unsigned) { on_listener_readable(); });
  arm_sweep_timer();
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    loop_->run_for(ticks_from_ms(250));
  }
  std::vector<int> fds;
  fds.reserve(sessions_.size());
  for (const auto& [fd, s] : sessions_) fds.push_back(fd);
  for (int fd : fds) close_session(fd);
  loop_->unwatch_fd(listener_.fd());
}

void ScrapeServer::arm_sweep_timer() {
  loop_->schedule_at(loop_->now() + ticks_from_sec(1), [this] {
    const Tick now = loop_->now();
    std::vector<int> expired;
    for (const auto& [fd, s] : sessions_) {
      if (now >= s.deadline) expired.push_back(fd);
    }
    for (int fd : expired) {
      errors_total_->add();
      close_session(fd);
    }
    arm_sweep_timer();
  });
}

void ScrapeServer::on_listener_readable() {
  while (auto accepted = listener_.accept()) {
    if (sessions_.size() >= params_.max_sessions) {
      net::TcpConn(accepted->fd).close();
      errors_total_->add();
      continue;
    }
    const int fd = accepted->fd;
    Session s;
    s.conn = net::TcpConn(fd);
    s.deadline = loop_->now() + params_.session_timeout;
    sessions_.emplace(fd, std::move(s));
    loop_->watch_fd(fd, net::kFdRead, [this, fd](unsigned events) {
      on_session_event(fd, events);
    });
  }
}

void ScrapeServer::on_session_event(int fd, unsigned events) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  if (!s.responding && (events & net::kFdRead) != 0u) {
    char buf[2048];
    for (;;) {
      const auto r = s.conn.read_some(
          std::span<std::byte>(reinterpret_cast<std::byte*>(buf), sizeof(buf)));
      if (r.status == net::TcpConn::IoStatus::kClosed) {
        close_session(fd);
        return;
      }
      if (r.status == net::TcpConn::IoStatus::kWouldBlock) break;
      s.rx.append(buf, r.bytes);
      if (s.rx.size() > params_.max_request_bytes) {
        errors_total_->add();
        close_session(fd);
        return;
      }
    }
    if (s.rx.find("\r\n\r\n") != std::string::npos ||
        s.rx.find("\n\n") != std::string::npos) {
      respond(s);
      loop_->update_fd(fd, net::kFdWrite);
    }
  }

  if (s.responding) {
    while (s.tx_sent < s.tx.size()) {
      const auto w = s.conn.write_some(std::span<const std::byte>(
          reinterpret_cast<const std::byte*>(s.tx.data()) + s.tx_sent, s.tx.size() - s.tx_sent));
      if (w.status == net::TcpConn::IoStatus::kClosed) {
        close_session(fd);
        return;
      }
      if (w.status == net::TcpConn::IoStatus::kWouldBlock) return;  // kFdWrite still armed
      s.tx_sent += w.bytes;
    }
    close_session(fd);  // HTTP/1.0: one response, then close
  }
}

void ScrapeServer::respond(Session& s) {
  const auto [method, path] = parse_request_line(s.rx);
  requests_total_->add();
  if (method != "GET") {
    errors_total_->add();
    s.tx = http_response(400, "Bad Request", "text/plain; charset=utf-8",
                         "only GET is supported\n");
  } else if (path == "/metrics" || path == "/") {
    s.tx = http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         registry_.render_text());
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_total_->add();
    s.tx = http_response(404, "Not Found", "text/plain; charset=utf-8",
                         "try /metrics\n");
  }
  s.responding = true;
}

void ScrapeServer::close_session(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  loop_->unwatch_fd(fd);
  it->second.conn.close();
  sessions_.erase(it);
}

}  // namespace twfd::obs

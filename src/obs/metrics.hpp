// Lock-free metrics layer for the 2W-FD runtime.
//
// A `Registry` owns named metric families (counter / gauge / histogram)
// with Prometheus-style labels. Registration is the cold path (mutex +
// map); every returned instance is pointer-stable for the life of the
// registry (or until explicitly removed), so hot paths cache a raw
// pointer once and then touch only relaxed atomics:
//
//   * `Counter`  — monotonically increasing u64. `add()` for live
//     increments, `set_total()` to mirror an externally maintained
//     cumulative count (the migration path for the existing ad-hoc
//     stats structs).
//   * `Gauge`    — a double that can go up and down.
//   * `Histogram`— fixed upper-bound buckets (inclusive `le`, implicit
//     +Inf), cumulative on render as the exposition format requires.
//   * `ShardedCounter` / `ShardedHistogram` — one cache-line-padded
//     cell per shard. Writers touch only their own cell with relaxed
//     ordering (no contention, no allocation on the heartbeat path);
//     cells are summed only at scrape time.
//
// `render_text()` produces Prometheus text exposition format v0.0.4.
// Collect hooks registered with `add_collect_hook` run first (outside
// the registry lock) so owners can refresh mirrored counters; the
// scrape endpoint (obs/scrape_server.hpp) serves the result.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace twfd::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the cumulative total (mirror of an external counter).
  void set_total(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Snapshot of a histogram for rendering/tests: per-bucket counts are
/// *non*-cumulative here; render_text accumulates them into `le` lines.
struct HistogramSnapshot {
  std::vector<double> bounds;           ///< finite upper bounds, ascending
  std::vector<std::uint64_t> buckets;   ///< bounds.size() + 1 (last = +Inf)
  std::uint64_t count = 0;
  double sum = 0.0;
};

class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Buckets are inclusive on the upper bound (`v <= le`), matching the
  /// exposition format's `le` semantics.
  void observe(double v) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One u64 per cell, each on its own cache line. `add` is wait-free and
/// contention-free as long as each writer sticks to its own cell.
class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t cells);

  void add(std::size_t cell, std::uint64_t n = 1) noexcept {
    cells_[cell].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t cells() const noexcept { return n_cells_; }
  /// Sum across cells; scrape-time only (racy-by-design snapshot).
  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::size_t n_cells_;
  std::unique_ptr<Cell[]> cells_;
};

/// Per-cell bucket arrays aggregated only at scrape. Each cell's
/// storage is a separate allocation so concurrent writers on different
/// cells never share a line.
class ShardedHistogram {
 public:
  ShardedHistogram(std::vector<double> bounds, std::size_t cells);

  void observe(std::size_t cell, double v) noexcept;
  [[nodiscard]] std::size_t cells() const noexcept { return cells_.size(); }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Aggregated across all cells; scrape-time only.
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  struct Cell {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;  // bounds.size() + 1
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<Cell> cells_;
};

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
[[nodiscard]] std::string label_escape(std::string_view v);

/// Builds a canonical label string `k1="v1",k2="v2"` with escaped
/// values. Pass the result as the `labels` argument of the registry
/// accessors.
[[nodiscard]] std::string make_labels(
    std::initializer_list<std::pair<std::string_view, std::string_view>> kvs);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Accessors are get-or-create and idempotent: the same (name, labels)
  /// pair always returns the same instance. Throws std::logic_error if
  /// `name` already exists with a different metric type (histograms also
  /// require identical bounds).
  Counter& counter(std::string_view name, std::string_view help, std::string labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, std::string labels = {});
  Histogram& histogram(std::string_view name, std::string_view help, std::vector<double> bounds,
                       std::string labels = {});
  ShardedCounter& sharded_counter(std::string_view name, std::string_view help, std::size_t cells,
                                  std::string labels = {});
  ShardedHistogram& sharded_histogram(std::string_view name, std::string_view help,
                                      std::vector<double> bounds, std::size_t cells,
                                      std::string labels = {});

  /// Registers a family with no instances yet, so its # HELP / # TYPE
  /// header renders even before the first labelled instance appears
  /// (scrape consumers can rely on family presence).
  void declare(std::string_view name, MetricType type, std::string_view help);

  /// Drops one labelled instance (e.g. when a subscription ends). The
  /// family and its header stay. Returns false if absent. The caller
  /// must guarantee no thread still holds the instance pointer.
  bool remove(std::string_view name, std::string_view labels);

  /// Runs before every render, outside the registry lock — owners use
  /// this to mirror externally owned stats into the registry at scrape
  /// time (e.g. ShardedMonitorService::merged_stats()).
  void add_collect_hook(std::function<void()> hook);

  /// Prometheus text exposition format v0.0.4. Thread-safe.
  [[nodiscard]] std::string render_text();

 private:
  using Metric = std::variant<Counter, Gauge, Histogram, ShardedCounter, ShardedHistogram>;
  struct Instance {
    std::string labels;  // canonical "k=\"v\",..." or empty
    Metric metric;
    template <typename T, typename... Args>
    explicit Instance(std::in_place_type_t<T> t, std::string l, Args&&... args)
        : labels(std::move(l)), metric(t, std::forward<Args>(args)...) {}
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    // A list (not a vector) so removal never shifts siblings: a 100k-
    // subscription service tears its series down one at a time, and a
    // vector erase per removal would cost O(n) moves each. Render order
    // stays insertion order either way.
    std::list<std::unique_ptr<Instance>> instances;
    // Labels -> list position, so get-or-create and remove are O(log n)
    // instead of a linear scan. Keys view the instances' own label
    // strings, which are heap-stable and immutable.
    std::map<std::string_view, std::list<std::unique_ptr<Instance>>::iterator, std::less<>>
        index;
  };

  Family& family_locked(std::string_view name, MetricType type, std::string_view help);
  Instance* find_locked(Family& fam, std::string_view labels);
  /// Appends `inst` to the family and indexes it by its labels.
  Instance& add_locked(Family& fam, std::unique_ptr<Instance> inst);

  mutable std::mutex mu_;
  std::map<std::string, Family, std::less<>> families_;
  std::mutex hooks_mu_;
  std::vector<std::function<void()>> hooks_;
};

/// The one shared text view of a registry: the scrape endpoint serves
/// it and the daemons print it at exit (same bytes, one renderer).
[[nodiscard]] inline std::string render_text(Registry& registry) {
  return registry.render_text();
}

}  // namespace twfd::obs

// Per-subscription QoS conformance tracking.
//
// 2W-FD's contract is a negotiated (T_D^U, T_MR^U, T_M^U) tuple per
// subscription; this module measures the live counterparts and exports
// both sides as gauges so a scrape shows conformance at a glance:
//
//   twfd_qos_detection_time_seconds          last measured detection sample
//   twfd_qos_detection_time_bound_seconds    negotiated T_D^U
//   twfd_qos_mistake_rate                    mistakes/s over the sliding window
//   twfd_qos_mistake_rate_bound              negotiated T_MR^U (lambda_M^U)
//   twfd_qos_mistake_duration_seconds        last measured mistake duration
//   twfd_qos_mistake_duration_bound_seconds  negotiated T_M^U
//   twfd_qos_suspected                       1 while the peer is suspected
//   twfd_qos_mistakes_total                  Suspect->Trust pairs observed
//   twfd_qos_violations_total                measured value exceeded its bound
//
// Measurement semantics (live runs have no ground truth about the
// remote process, so both metrics are conservative upper bounds):
//   * detection sample = suspect_time − last_heartbeat_arrival. If the
//     peer really crashed right after its last heartbeat this IS the
//     detection time; if it crashed later, the true value is smaller.
//   * every Suspect→Trust pair counts as a mistake (a real crash never
//     transitions back), its duration being trust_time − suspect_time.
//
// Threading: record_suspect/record_trust for one handle must come from
// that subscription's owning shard thread (single writer), matching the
// FdService callback contract. track/untrack/refresh are any-thread
// (cold path, small mutexes). The per-event cost is a handful of
// relaxed atomic stores plus one uncontended mutex for the mistake
// window ring — nothing on the heartbeat path itself allocates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "config/qos_config.hpp"
#include "obs/metrics.hpp"

namespace twfd::obs {

class QosTracker {
 public:
  struct Params {
    /// Sliding window over which the mistake rate is computed.
    Tick window = ticks_from_sec(300);
    /// Mistake timestamps kept per entry; older ones age out of the
    /// window anyway, this just bounds memory for a flapping peer.
    std::size_t max_mistakes_kept = 256;
  };

  struct Entry;            // opaque to callers
  using Handle = Entry*;   // nullptr = not tracked

  explicit QosTracker(Registry& registry) : QosTracker(registry, Params{}) {}
  QosTracker(Registry& registry, Params params);
  ~QosTracker();
  QosTracker(const QosTracker&) = delete;
  QosTracker& operator=(const QosTracker&) = delete;

  /// Registers gauges labelled {app, peer, sub} (sub is a tracker-local
  /// sequence number so two subscriptions to the same peer stay
  /// distinct). `start` anchors the mistake-rate window.
  Handle track(std::string_view app, std::uint64_t peer_id, const config::QosRequirements& qos,
               Tick start);

  /// Drops the entry and its labelled gauges from the registry. The
  /// handle is dead afterwards. nullptr is a no-op.
  void untrack(Handle h);

  /// The subscription transitioned to Suspect at `when`; the monitored
  /// peer's most recent heartbeat arrived at `last_heartbeat_arrival`
  /// (0 = never heard, which yields no detection sample).
  void record_suspect(Handle h, Tick when, Tick last_heartbeat_arrival);

  /// The subscription transitioned back to Trust at `when`.
  void record_trust(Handle h, Tick when);

  /// Recomputes windowed mistake rates as of `now`; call from a scrape
  /// collect hook so the rate decays between events.
  void refresh(Tick now);

  [[nodiscard]] std::uint64_t violations() const noexcept {
    return total_violations_.value();
  }
  [[nodiscard]] std::size_t tracked() const;

 private:
  void recompute_rate_locked(Entry& e, Tick now);

  Registry& registry_;
  Params params_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
  std::uint64_t next_seq_ = 1;
  Counter total_violations_;  // process-wide sum, not registry-backed
};

}  // namespace twfd::obs

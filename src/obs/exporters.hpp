// Header-only bridges from the runtime's existing stats structs onto an
// obs::Registry.
//
// Each exporter registers its metric instances once (constructor, cold
// path) and caches raw pointers; `update(stats)` then mirrors a
// snapshot with relaxed stores only. The snapshots themselves must be
// obtained under each struct's own threading contract — e.g. copy
// EventLoop::stats() on the loop thread, call the marshalled
// ShardedMonitorService::merged_stats() from anywhere — typically from
// a Registry collect hook or a periodic owner-thread timer.
//
// Header-only on purpose: fd_obs must stay below fd_service in the
// link order (FdService itself uses QosTracker), so the compiled
// library cannot depend on shard/api/federation types. Including this
// header from a tool pulls in whichever stats structs that tool links.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "net/event_loop.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"

namespace twfd::obs {

/// Mirrors net::EventLoop::Stats (+ its TimerStats). `labels` should
/// carry a `loop` label naming which loop this is ("main", "api",
/// "shards"...).
class EventLoopExport {
 public:
  EventLoopExport(Registry& r, std::string labels)
      : datagrams_sent_(&r.counter("twfd_loop_datagrams_sent_total",
                                   "Datagrams sent by the event loop.", labels)),
        datagrams_received_(&r.counter("twfd_loop_datagrams_received_total",
                                       "Datagrams received by the event loop.", labels)),
        datagrams_injected_(&r.counter("twfd_loop_datagrams_injected_total",
                                       "Datagrams handed over by sibling shards.", labels)),
        send_soft_failures_(&r.counter("twfd_loop_send_soft_failures_total",
                                       "Send attempts reported as soft failures.", labels)),
        recv_errors_(&r.counter("twfd_loop_recv_errors_total",
                                "Hard receive errors surfaced by the socket.", labels)),
        rx_batches_(&r.counter("twfd_loop_rx_batches_total",
                               "Non-empty receive batches.", labels)),
        rx_batch_max_(&r.gauge("twfd_loop_rx_batch_max",
                               "Largest receive batch seen in one syscall.", labels)),
        rx_kernel_stamps_(&r.counter("twfd_loop_rx_kernel_stamps_total",
                                     "Datagrams stamped by the kernel (SO_TIMESTAMPNS).",
                                     labels)),
        rx_truncated_(&r.counter("twfd_loop_rx_truncated_total",
                                 "Datagrams delivered truncated.", labels)),
        wakeups_io_(&r.counter("twfd_loop_wakeups_total",
                               "poll() returns by wake cause.",
                               labels.empty() ? std::string("cause=\"io\"")
                                              : labels + ",cause=\"io\"")),
        wakeups_timer_(&r.counter("twfd_loop_wakeups_total", "poll() returns by wake cause.",
                                  labels.empty() ? std::string("cause=\"timer\"")
                                                 : labels + ",cause=\"timer\"")),
        wakeups_cross_(&r.counter("twfd_loop_wakeups_total", "poll() returns by wake cause.",
                                  labels.empty() ? std::string("cause=\"cross\"")
                                                 : labels + ",cause=\"cross\"")),
        wakeups_spurious_(&r.counter("twfd_loop_wakeups_total", "poll() returns by wake cause.",
                                     labels.empty() ? std::string("cause=\"spurious\"")
                                                    : labels + ",cause=\"spurious\"")),
        fd_dispatches_(&r.counter("twfd_loop_fd_dispatches_total",
                                  "Readiness callbacks delivered to watched fds.", labels)),
        timers_scheduled_(&r.counter("twfd_timers_scheduled_total",
                                     "Timer schedule_at calls.", labels)),
        timers_cancelled_(&r.counter("twfd_timers_cancelled_total",
                                     "Cancels that hit a pending timer.", labels)),
        timers_rescheduled_(&r.counter("twfd_timers_rescheduled_total",
                                       "Reschedules that hit a pending timer.", labels)),
        timers_fired_(&r.counter("twfd_timers_fired_total",
                                 "Timer callbacks actually invoked.", labels)),
        timers_superseded_(&r.counter("twfd_timers_superseded_total",
                                      "Reschedules that re-placed a timer record "
                                      "(vs. the lazy deadline rewrite).", labels)),
        timer_cascades_(&r.counter("twfd_timer_cascades_total",
                                   "Records relocated between wheel slots.", labels)),
        timer_compactions_(&r.counter("twfd_timer_compactions_total",
                                      "Stale-entry timer-heap compactions "
                                      "(legacy heap only; 0 on the wheel).", labels)),
        timers_live_(&r.gauge("twfd_timers_live",
                              "Pending timers right now.", labels)),
        timer_slots_occupied_(&r.gauge("twfd_timer_wheel_slots_occupied",
                                       "Wheel slots holding at least one record.",
                                       labels)),
        timer_max_scan_(&r.gauge("twfd_timer_wheel_max_scan",
                                 "Most bitmap words one earliest-slot search "
                                 "touched.", labels)) {}

  void update(const net::EventLoop::Stats& s) {
    datagrams_sent_->set_total(s.datagrams_sent);
    datagrams_received_->set_total(s.datagrams_received);
    datagrams_injected_->set_total(s.datagrams_injected);
    send_soft_failures_->set_total(s.send_soft_failures);
    recv_errors_->set_total(s.recv_errors);
    rx_batches_->set_total(s.rx_batches);
    rx_batch_max_->set(static_cast<double>(s.rx_batch_max));
    rx_kernel_stamps_->set_total(s.rx_kernel_stamps);
    rx_truncated_->set_total(s.rx_truncated);
    wakeups_io_->set_total(s.wakeups_io);
    wakeups_timer_->set_total(s.wakeups_timer);
    wakeups_cross_->set_total(s.wakeups_cross);
    wakeups_spurious_->set_total(s.wakeups_spurious);
    fd_dispatches_->set_total(s.fd_dispatches);
    timers_scheduled_->set_total(s.timers.scheduled);
    timers_cancelled_->set_total(s.timers.cancelled);
    timers_rescheduled_->set_total(s.timers.rescheduled);
    timers_fired_->set_total(s.timers.fired);
    timers_superseded_->set_total(s.timers.superseded);
    timer_cascades_->set_total(s.timers.cascades);
    timer_compactions_->set_total(s.timers.compactions);
    timers_live_->set(static_cast<double>(s.timers.live));
    timer_slots_occupied_->set(static_cast<double>(s.timers.wheel_slots_occupied));
    timer_max_scan_->set(static_cast<double>(s.timers.wheel_max_scan));
  }

 private:
  Counter* datagrams_sent_;
  Counter* datagrams_received_;
  Counter* datagrams_injected_;
  Counter* send_soft_failures_;
  Counter* recv_errors_;
  Counter* rx_batches_;
  Gauge* rx_batch_max_;
  Counter* rx_kernel_stamps_;
  Counter* rx_truncated_;
  Counter* wakeups_io_;
  Counter* wakeups_timer_;
  Counter* wakeups_cross_;
  Counter* wakeups_spurious_;
  Counter* fd_dispatches_;
  Counter* timers_scheduled_;
  Counter* timers_cancelled_;
  Counter* timers_rescheduled_;
  Counter* timers_fired_;
  Counter* timers_superseded_;
  Counter* timer_cascades_;
  Counter* timer_compactions_;
  Gauge* timers_live_;
  Gauge* timer_slots_occupied_;
  Gauge* timer_max_scan_;
};

/// Mirrors net::FaultStats (chaos injection accounting). `labels`
/// should say which injection point (`point="rx"`, `point="proxy"`).
class ChaosExport {
 public:
  ChaosExport(Registry& r, const std::string& labels)
      : offered_(&r.counter("twfd_chaos_offered_total",
                            "Datagrams/segments offered to the fault injector.", labels)),
        passed_(&r.counter("twfd_chaos_passed_total",
                           "Offered traffic the injector let through untouched.", labels)),
        dropped_(&r.counter("twfd_chaos_dropped_total",
                            "Traffic dropped by chaos injection.", labels)),
        duplicated_(&r.counter("twfd_chaos_duplicated_total",
                               "Traffic duplicated by chaos injection.", labels)),
        reordered_(&r.counter("twfd_chaos_reordered_total",
                              "Traffic reordered by chaos injection.", labels)),
        truncated_(&r.counter("twfd_chaos_truncated_total",
                              "Traffic truncated by chaos injection.", labels)),
        delayed_(&r.counter("twfd_chaos_delayed_total",
                            "Traffic delayed by chaos injection.", labels)) {}

  void update(const net::FaultStats& s) {
    offered_->set_total(s.offered);
    passed_->set_total(s.passed);
    dropped_->set_total(s.dropped);
    duplicated_->set_total(s.duplicated);
    reordered_->set_total(s.reordered);
    truncated_->set_total(s.truncated);
    delayed_->set_total(s.delayed);
  }

 private:
  Counter* offered_;
  Counter* passed_;
  Counter* dropped_;
  Counter* duplicated_;
  Counter* reordered_;
  Counter* truncated_;
  Counter* delayed_;
};

}  // namespace twfd::obs

// --- shard tier ---------------------------------------------------------
// Only materialised for translation units that already include the shard
// runtime; keeps fd_obs itself independent of fd_shard.
#if __has_include("shard/sharded_monitor_service.hpp")
#include "shard/sharded_monitor_service.hpp"

namespace twfd::obs {

/// Mirrors a merged ShardedMonitorService::ShardStats (plus the
/// embedded loop stats under loop="shards" and chaos stats under
/// point="rx").
class ShardExport {
 public:
  explicit ShardExport(Registry& r)
      : loop_(r, make_labels({{"loop", "shards"}})),
        chaos_(r, make_labels({{"point", "rx"}})),
        shards_(&r.gauge("twfd_shards", "Configured shard workers.")),
        degraded_(&r.gauge("twfd_shard_degraded", "Shards currently marked degraded.")),
        pinned_(&r.gauge("twfd_shard_pinned", "Shards pinned to a dedicated core.")),
        dispatcher_heartbeats_(&r.counter("twfd_shard_dispatcher_heartbeats_total",
                                          "Heartbeats decoded by shard dispatchers.")),
        dispatcher_malformed_(&r.counter("twfd_shard_dispatcher_malformed_total",
                                         "Malformed datagrams dropped by dispatchers.")),
        service_heartbeats_(&r.counter("twfd_shard_service_heartbeats_total",
                                       "Heartbeats applied by the per-shard FD services.")),
        handoff_out_(&r.counter("twfd_shard_handoff_out_total",
                                "Datagrams forwarded to sibling shards.")),
        handoff_dropped_(&r.counter("twfd_shard_handoff_dropped_total",
                                    "Forwards lost because a sibling queue was full.")),
        handoff_batches_(&r.counter("twfd_shard_handoff_batches_total",
                                    "Hand-off flush commands pushed.")),
        commands_run_(&r.counter("twfd_shard_commands_run_total",
                                 "Control-plane commands executed on shard threads.")),
        events_dropped_(&r.counter("twfd_shard_events_dropped_total",
                                   "Transitions lost because the event queue was full.")),
        post_retries_(&r.counter("twfd_shard_post_retries_total",
                                 "Control pushes that found a queue full.")),
        post_stalls_(&r.counter("twfd_shard_post_stalls_total",
                                "Control pushes abandoned: queue wedged.")),
        restarts_(&r.counter("twfd_shard_restarts_total",
                             "Supervisor rebuilds of shard workers.")),
        stalls_detected_(&r.counter("twfd_shard_stalls_detected_total",
                                    "Degraded-while-alive watchdog detections.")),
        resubscribed_(&r.counter("twfd_shard_resubscribed_total",
                                 "Subscriptions re-seeded by shard restarts.")) {}

  void update(const shard::ShardedMonitorService::ShardStats& merged,
              std::size_t shard_count) {
    loop_.update(merged.loop);
    chaos_.update(merged.chaos);
    shards_->set(static_cast<double>(shard_count));
    degraded_->set(static_cast<double>(merged.degraded));
    pinned_->set(static_cast<double>(merged.pinned));
    dispatcher_heartbeats_->set_total(merged.dispatcher_heartbeats);
    dispatcher_malformed_->set_total(merged.dispatcher_malformed);
    service_heartbeats_->set_total(merged.service_heartbeats);
    handoff_out_->set_total(merged.handoff_out);
    handoff_dropped_->set_total(merged.handoff_dropped);
    handoff_batches_->set_total(merged.handoff_batches);
    commands_run_->set_total(merged.commands_run);
    events_dropped_->set_total(merged.events_dropped);
    post_retries_->set_total(merged.post_retries);
    post_stalls_->set_total(merged.post_stalls);
    restarts_->set_total(merged.restarts);
    stalls_detected_->set_total(merged.stalls_detected);
    resubscribed_->set_total(merged.resubscribed);
  }

 private:
  EventLoopExport loop_;
  ChaosExport chaos_;
  Gauge* shards_;
  Gauge* degraded_;
  Gauge* pinned_;
  Counter* dispatcher_heartbeats_;
  Counter* dispatcher_malformed_;
  Counter* service_heartbeats_;
  Counter* handoff_out_;
  Counter* handoff_dropped_;
  Counter* handoff_batches_;
  Counter* commands_run_;
  Counter* events_dropped_;
  Counter* post_retries_;
  Counter* post_stalls_;
  Counter* restarts_;
  Counter* stalls_detected_;
  Counter* resubscribed_;
};

}  // namespace twfd::obs
#endif  // shard

// --- FDaaS API tier -----------------------------------------------------
#if __has_include("api/fdaas_server.hpp")
#include "api/fdaas_server.hpp"

namespace twfd::obs {

/// Mirrors api::FdaasServer::Stats, federation counters included.
class FdaasExport {
 public:
  explicit FdaasExport(Registry& r)
      : sessions_accepted_(&r.counter("twfd_api_sessions_accepted_total",
                                      "TCP control sessions accepted.")),
        sessions_active_(&r.gauge("twfd_api_sessions_active", "Live control sessions.")),
        sessions_rejected_(&r.counter("twfd_api_sessions_rejected_total",
                                      "Sessions refused over max_sessions.")),
        subscriptions_active_(&r.gauge("twfd_api_subscriptions_active",
                                       "Live client subscriptions.")),
        subscriptions_total_(&r.counter("twfd_api_subscriptions_total",
                                        "Subscriptions ever accepted.")),
        frames_received_(&r.counter("twfd_api_frames_received_total",
                                    "TWFC frames decoded from clients.")),
        frames_malformed_(&r.counter("twfd_api_frames_malformed_total",
                                     "Bad bodies / hostile length prefixes.")),
        events_pushed_(&r.counter("twfd_api_events_pushed_total",
                                  "Status events pushed to clients.")),
        events_unroutable_(&r.counter("twfd_api_events_unroutable_total",
                                      "Events with no owning session.")),
        slow_evictions_(&r.counter("twfd_api_slow_evictions_total",
                                   "Sessions evicted over send-queue backpressure.")),
        lease_expiries_(&r.counter("twfd_api_lease_expiries_total",
                                   "Sessions dropped on lease expiry.")),
        disconnects_(&r.counter("twfd_api_disconnects_total", "EOF / reset closes.")),
        bytes_sent_(&r.counter("twfd_api_bytes_sent_total", "Bytes written to clients.")),
        bytes_received_(&r.counter("twfd_api_bytes_received_total",
                                   "Bytes read from clients.")),
        health_broadcasts_(&r.counter("twfd_api_health_broadcasts_total",
                                      "Shard health events fanned out.")),
        digests_ingested_(&r.counter("twfd_fed_digests_ingested_total",
                                     "Child Digest frames accepted.")),
        digest_entries_applied_(&r.counter("twfd_fed_digest_entries_applied_total",
                                           "Digest entries newer than stored state.")),
        digest_entries_stale_(&r.counter("twfd_fed_digest_entries_stale_total",
                                         "Digest entries seq-dropped (replay/failover).")),
        digest_entries_foreign_(&r.counter("twfd_fed_digest_entries_foreign_total",
                                           "Digest entries outside delegated ranges.")),
        digest_frames_flushed_(&r.counter("twfd_fed_digest_frames_flushed_total",
                                          "Digest frames handed upstream.")),
        fed_subscriptions_active_(&r.gauge("twfd_fed_subscriptions_active",
                                           "Live federated subscriptions.")),
        fed_events_pushed_(&r.counter("twfd_fed_events_pushed_total",
                                      "Subtree transitions fanned out.")),
        delegates_sent_(&r.counter("twfd_fed_delegates_sent_total",
                                   "Delegate range assignments pushed to children.")),
        snapshot_saves_(&r.counter("twfd_snapshot_saves_total",
                                   "Crash-persistence snapshots written.")),
        snapshot_save_failures_(&r.counter("twfd_snapshot_save_failures_total",
                                           "Snapshot writes that failed.")),
        snapshot_restored_subs_(&r.counter("twfd_snapshot_restored_subscriptions_total",
                                           "Subscriptions re-seeded from a snapshot.")),
        snapshot_replayed_transitions_(
            &r.counter("twfd_snapshot_replayed_transitions_total",
                       "Net transitions replayed to reconnecting clients "
                       "across a restart.")),
        snapshot_age_seconds_(&r.gauge("twfd_snapshot_age_seconds",
                                       "Seconds since the last snapshot save.")),
        snapshot_bytes_(&r.gauge("twfd_snapshot_bytes",
                                 "Size of the last snapshot written.")),
        orphans_active_(&r.gauge("twfd_snapshot_orphans_active",
                                 "Restored subscriptions awaiting a reclaim.")),
        orphans_claimed_(&r.counter("twfd_snapshot_orphans_claimed_total",
                                    "Restored subscriptions reclaimed by clients.")),
        orphans_expired_(&r.counter("twfd_snapshot_orphans_expired_total",
                                    "Restored subscriptions dropped on TTL.")),
        fed_children_restored_(&r.counter("twfd_fed_children_restored_total",
                                          "Federation children reattached after "
                                          "a snapshot restore.")) {}

  void update(const api::FdaasServer::Stats& s) {
    sessions_accepted_->set_total(s.sessions_accepted);
    sessions_active_->set(static_cast<double>(s.sessions_active));
    sessions_rejected_->set_total(s.sessions_rejected);
    subscriptions_active_->set(static_cast<double>(s.subscriptions_active));
    subscriptions_total_->set_total(s.subscriptions_total);
    frames_received_->set_total(s.frames_received);
    frames_malformed_->set_total(s.frames_malformed);
    events_pushed_->set_total(s.events_pushed);
    events_unroutable_->set_total(s.events_unroutable);
    slow_evictions_->set_total(s.slow_evictions);
    lease_expiries_->set_total(s.lease_expiries);
    disconnects_->set_total(s.disconnects);
    bytes_sent_->set_total(s.bytes_sent);
    bytes_received_->set_total(s.bytes_received);
    health_broadcasts_->set_total(s.health_broadcasts);
    digests_ingested_->set_total(s.digests_ingested);
    digest_entries_applied_->set_total(s.digest_entries_applied);
    digest_entries_stale_->set_total(s.digest_entries_stale);
    digest_entries_foreign_->set_total(s.digest_entries_foreign);
    digest_frames_flushed_->set_total(s.digest_frames_flushed);
    fed_subscriptions_active_->set(static_cast<double>(s.fed_subscriptions_active));
    fed_events_pushed_->set_total(s.fed_events_pushed);
    delegates_sent_->set_total(s.delegates_sent);
    snapshot_saves_->set_total(s.snapshot_saves);
    snapshot_save_failures_->set_total(s.snapshot_save_failures);
    snapshot_restored_subs_->set_total(s.snapshot_restored_subs);
    snapshot_replayed_transitions_->set_total(s.snapshot_replayed_transitions);
    snapshot_age_seconds_->set(static_cast<double>(s.snapshot_age_ns) / 1e9);
    snapshot_bytes_->set(static_cast<double>(s.snapshot_bytes));
    orphans_active_->set(static_cast<double>(s.orphans_active));
    orphans_claimed_->set_total(s.orphans_claimed);
    orphans_expired_->set_total(s.orphans_expired);
    fed_children_restored_->set_total(s.fed_children_restored);
  }

 private:
  Counter* sessions_accepted_;
  Gauge* sessions_active_;
  Counter* sessions_rejected_;
  Gauge* subscriptions_active_;
  Counter* subscriptions_total_;
  Counter* frames_received_;
  Counter* frames_malformed_;
  Counter* events_pushed_;
  Counter* events_unroutable_;
  Counter* slow_evictions_;
  Counter* lease_expiries_;
  Counter* disconnects_;
  Counter* bytes_sent_;
  Counter* bytes_received_;
  Counter* health_broadcasts_;
  Counter* digests_ingested_;
  Counter* digest_entries_applied_;
  Counter* digest_entries_stale_;
  Counter* digest_entries_foreign_;
  Counter* digest_frames_flushed_;
  Gauge* fed_subscriptions_active_;
  Counter* fed_events_pushed_;
  Counter* delegates_sent_;
  Counter* snapshot_saves_;
  Counter* snapshot_save_failures_;
  Counter* snapshot_restored_subs_;
  Counter* snapshot_replayed_transitions_;
  Gauge* snapshot_age_seconds_;
  Gauge* snapshot_bytes_;
  Gauge* orphans_active_;
  Counter* orphans_claimed_;
  Counter* orphans_expired_;
  Counter* fed_children_restored_;
};

}  // namespace twfd::obs
#endif  // api

// --- federation tier ----------------------------------------------------
#if __has_include("federation/federation_core.hpp") && \
    __has_include("federation/upstream_link.hpp")
#include "federation/federation_core.hpp"
#include "federation/upstream_link.hpp"

namespace twfd::obs {

/// Mirrors federation::FederationCore::Stats plus the node's upstream
/// link (redials included — the link rides api::ReconnectingClient).
class FederationExport {
 public:
  explicit FederationExport(Registry& r)
      : local_transitions_(&r.counter("twfd_fed_local_transitions_total",
                                      "Leaf-side transitions noted by the core.")),
        local_unmapped_(&r.counter("twfd_fed_local_unmapped_total",
                                   "Events with no peer-key mapping.")),
        entries_flushed_(&r.counter("twfd_fed_entries_flushed_total",
                                    "Digest entries flushed upstream.")),
        snapshots_built_(&r.counter("twfd_fed_snapshots_built_total",
                                    "Full-state snapshot digests built.")),
        delegations_applied_(&r.counter("twfd_fed_delegations_applied_total",
                                        "Delegate frames adopted from the parent.")),
        link_frames_sent_(&r.counter("twfd_fed_link_frames_sent_total",
                                     "Digest frames sent on the upstream link.")),
        link_frames_dropped_(&r.counter("twfd_fed_link_frames_dropped_total",
                                        "Upstream frames lost to queue overflow.")),
        link_snapshots_sent_(&r.counter("twfd_fed_link_snapshots_sent_total",
                                        "Reconnect snapshot pushes upstream.")),
        link_reconnects_(&r.counter("twfd_fed_link_reconnects_total",
                                    "Upstream link recoveries beyond first connect.")) {}

  void update_core(const federation::FederationCore::Stats& s) {
    local_transitions_->set_total(s.local_transitions);
    local_unmapped_->set_total(s.local_unmapped);
    entries_flushed_->set_total(s.entries_flushed);
    snapshots_built_->set_total(s.snapshots_built);
    delegations_applied_->set_total(s.delegations_applied);
  }

  void update_link(const federation::UpstreamLink::Stats& s) {
    link_frames_sent_->set_total(s.frames_sent);
    link_frames_dropped_->set_total(s.frames_dropped);
    link_snapshots_sent_->set_total(s.snapshots_sent);
    link_reconnects_->set_total(s.reconnects);
  }

 private:
  Counter* local_transitions_;
  Counter* local_unmapped_;
  Counter* entries_flushed_;
  Counter* snapshots_built_;
  Counter* delegations_applied_;
  Counter* link_frames_sent_;
  Counter* link_frames_dropped_;
  Counter* link_snapshots_sent_;
  Counter* link_reconnects_;
};

}  // namespace twfd::obs
#endif  // federation

// --- supervision tier ---------------------------------------------------
#if __has_include("supervise/supervisor.hpp")
#include "supervise/supervisor.hpp"

namespace twfd::obs {

/// Mirrors supervise::Supervisor stats plus a per-service state gauge.
/// `twfd_supervisor_child_state{service="..."}` carries the numeric
/// ChildState (0=down 1=starting 2=up 3=degraded 4=restarting 5=stopping
/// 6=fatal) so alert rules can match `!= 2`.
class SuperviseExport {
 public:
  SuperviseExport(Registry& r, const std::vector<std::string>& services)
      : spawns_(&r.counter("twfd_supervisor_spawns_total",
                           "Child processes forked by the supervisor.")),
        restarts_(&r.counter("twfd_supervisor_restarts_total",
                             "Restarts scheduled after a crash or hang.")),
        hung_kills_(&r.counter("twfd_supervisor_hung_kills_total",
                               "Children SIGKILLed for missing heartbeats.")),
        fatal_children_(&r.gauge("twfd_supervisor_fatal_children",
                                 "Services parked on a fatal exit code.")),
        up_children_(&r.gauge("twfd_supervisor_up_children",
                              "Services currently up.")) {
    child_state_.reserve(services.size());
    child_restarts_.reserve(services.size());
    child_backoff_.reserve(services.size());
    for (const std::string& name : services) {
      const std::string labels = make_labels({{"service", name}});
      child_state_.push_back(&r.gauge("twfd_supervisor_child_state",
                                      "Per-service state machine position.", labels));
      child_restarts_.push_back(&r.counter("twfd_supervisor_child_restarts_total",
                                           "Per-service restarts.", labels));
      child_backoff_.push_back(&r.gauge("twfd_supervisor_child_backoff_seconds",
                                        "Current backoff ladder rung.", labels));
    }
  }

  void update(const supervise::Supervisor::Stats& s,
              const std::vector<supervise::Supervisor::ChildStatus>& children) {
    spawns_->set_total(s.spawns_total);
    restarts_->set_total(s.restarts_total);
    hung_kills_->set_total(s.hung_kills_total);
    fatal_children_->set(static_cast<double>(s.fatal_children));
    up_children_->set(static_cast<double>(s.up_children));
    const std::size_t n = std::min(children.size(), child_state_.size());
    for (std::size_t i = 0; i < n; ++i) {
      child_state_[i]->set(static_cast<double>(children[i].state));
      child_restarts_[i]->set_total(children[i].restarts);
      child_backoff_[i]->set(static_cast<double>(children[i].backoff) / 1e9);
    }
  }

 private:
  Counter* spawns_;
  Counter* restarts_;
  Counter* hung_kills_;
  Gauge* fatal_children_;
  Gauge* up_children_;
  std::vector<Gauge*> child_state_;
  std::vector<Counter*> child_restarts_;
  std::vector<Gauge*> child_backoff_;
};

}  // namespace twfd::obs
#endif  // supervise

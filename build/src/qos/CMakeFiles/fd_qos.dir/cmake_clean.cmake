file(REMOVE_RECURSE
  "CMakeFiles/fd_qos.dir/crash_experiment.cpp.o"
  "CMakeFiles/fd_qos.dir/crash_experiment.cpp.o.d"
  "CMakeFiles/fd_qos.dir/evaluator.cpp.o"
  "CMakeFiles/fd_qos.dir/evaluator.cpp.o.d"
  "CMakeFiles/fd_qos.dir/intervals.cpp.o"
  "CMakeFiles/fd_qos.dir/intervals.cpp.o.d"
  "CMakeFiles/fd_qos.dir/mistake_set.cpp.o"
  "CMakeFiles/fd_qos.dir/mistake_set.cpp.o.d"
  "CMakeFiles/fd_qos.dir/parallel_eval.cpp.o"
  "CMakeFiles/fd_qos.dir/parallel_eval.cpp.o.d"
  "CMakeFiles/fd_qos.dir/subsample.cpp.o"
  "CMakeFiles/fd_qos.dir/subsample.cpp.o.d"
  "libfd_qos.a"
  "libfd_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

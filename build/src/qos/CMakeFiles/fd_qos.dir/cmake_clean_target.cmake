file(REMOVE_RECURSE
  "libfd_qos.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qos/crash_experiment.cpp" "src/qos/CMakeFiles/fd_qos.dir/crash_experiment.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/crash_experiment.cpp.o.d"
  "/root/repo/src/qos/evaluator.cpp" "src/qos/CMakeFiles/fd_qos.dir/evaluator.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/evaluator.cpp.o.d"
  "/root/repo/src/qos/intervals.cpp" "src/qos/CMakeFiles/fd_qos.dir/intervals.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/intervals.cpp.o.d"
  "/root/repo/src/qos/mistake_set.cpp" "src/qos/CMakeFiles/fd_qos.dir/mistake_set.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/mistake_set.cpp.o.d"
  "/root/repo/src/qos/parallel_eval.cpp" "src/qos/CMakeFiles/fd_qos.dir/parallel_eval.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/parallel_eval.cpp.o.d"
  "/root/repo/src/qos/subsample.cpp" "src/qos/CMakeFiles/fd_qos.dir/subsample.cpp.o" "gcc" "src/qos/CMakeFiles/fd_qos.dir/subsample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fd_qos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libfd_config.a"
)

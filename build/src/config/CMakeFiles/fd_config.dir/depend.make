# Empty dependencies file for fd_config.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fd_config.dir/qos_config.cpp.o"
  "CMakeFiles/fd_config.dir/qos_config.cpp.o.d"
  "libfd_config.a"
  "libfd_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

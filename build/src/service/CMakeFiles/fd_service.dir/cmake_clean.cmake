file(REMOVE_RECURSE
  "CMakeFiles/fd_service.dir/dispatcher.cpp.o"
  "CMakeFiles/fd_service.dir/dispatcher.cpp.o.d"
  "CMakeFiles/fd_service.dir/fd_service.cpp.o"
  "CMakeFiles/fd_service.dir/fd_service.cpp.o.d"
  "CMakeFiles/fd_service.dir/heartbeat_sender.cpp.o"
  "CMakeFiles/fd_service.dir/heartbeat_sender.cpp.o.d"
  "CMakeFiles/fd_service.dir/membership.cpp.o"
  "CMakeFiles/fd_service.dir/membership.cpp.o.d"
  "CMakeFiles/fd_service.dir/monitor.cpp.o"
  "CMakeFiles/fd_service.dir/monitor.cpp.o.d"
  "CMakeFiles/fd_service.dir/trace_recorder.cpp.o"
  "CMakeFiles/fd_service.dir/trace_recorder.cpp.o.d"
  "libfd_service.a"
  "libfd_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

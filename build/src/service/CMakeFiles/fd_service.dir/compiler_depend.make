# Empty compiler generated dependencies file for fd_service.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/dispatcher.cpp" "src/service/CMakeFiles/fd_service.dir/dispatcher.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/dispatcher.cpp.o.d"
  "/root/repo/src/service/fd_service.cpp" "src/service/CMakeFiles/fd_service.dir/fd_service.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/fd_service.cpp.o.d"
  "/root/repo/src/service/heartbeat_sender.cpp" "src/service/CMakeFiles/fd_service.dir/heartbeat_sender.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/heartbeat_sender.cpp.o.d"
  "/root/repo/src/service/membership.cpp" "src/service/CMakeFiles/fd_service.dir/membership.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/membership.cpp.o.d"
  "/root/repo/src/service/monitor.cpp" "src/service/CMakeFiles/fd_service.dir/monitor.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/monitor.cpp.o.d"
  "/root/repo/src/service/trace_recorder.cpp" "src/service/CMakeFiles/fd_service.dir/trace_recorder.cpp.o" "gcc" "src/service/CMakeFiles/fd_service.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/fd_config.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

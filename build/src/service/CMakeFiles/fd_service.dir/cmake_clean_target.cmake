file(REMOVE_RECURSE
  "libfd_service.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fd_net.dir/event_loop.cpp.o"
  "CMakeFiles/fd_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/fd_net.dir/udp_socket.cpp.o"
  "CMakeFiles/fd_net.dir/udp_socket.cpp.o.d"
  "CMakeFiles/fd_net.dir/wire.cpp.o"
  "CMakeFiles/fd_net.dir/wire.cpp.o.d"
  "libfd_net.a"
  "libfd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fd_net.
# This may be replaced when dependencies are built.

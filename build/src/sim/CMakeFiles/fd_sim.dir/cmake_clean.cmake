file(REMOVE_RECURSE
  "CMakeFiles/fd_sim.dir/sim_world.cpp.o"
  "CMakeFiles/fd_sim.dir/sim_world.cpp.o.d"
  "libfd_sim.a"
  "libfd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fd_detect.
# This may be replaced when dependencies are built.

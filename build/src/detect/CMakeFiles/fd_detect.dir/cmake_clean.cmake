file(REMOVE_RECURSE
  "CMakeFiles/fd_detect.dir/bertier.cpp.o"
  "CMakeFiles/fd_detect.dir/bertier.cpp.o.d"
  "CMakeFiles/fd_detect.dir/chen.cpp.o"
  "CMakeFiles/fd_detect.dir/chen.cpp.o.d"
  "CMakeFiles/fd_detect.dir/ed.cpp.o"
  "CMakeFiles/fd_detect.dir/ed.cpp.o.d"
  "CMakeFiles/fd_detect.dir/fixed_timeout.cpp.o"
  "CMakeFiles/fd_detect.dir/fixed_timeout.cpp.o.d"
  "CMakeFiles/fd_detect.dir/nfd_s.cpp.o"
  "CMakeFiles/fd_detect.dir/nfd_s.cpp.o.d"
  "CMakeFiles/fd_detect.dir/phi_accrual.cpp.o"
  "CMakeFiles/fd_detect.dir/phi_accrual.cpp.o.d"
  "libfd_detect.a"
  "libfd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/bertier.cpp" "src/detect/CMakeFiles/fd_detect.dir/bertier.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/bertier.cpp.o.d"
  "/root/repo/src/detect/chen.cpp" "src/detect/CMakeFiles/fd_detect.dir/chen.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/chen.cpp.o.d"
  "/root/repo/src/detect/ed.cpp" "src/detect/CMakeFiles/fd_detect.dir/ed.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/ed.cpp.o.d"
  "/root/repo/src/detect/fixed_timeout.cpp" "src/detect/CMakeFiles/fd_detect.dir/fixed_timeout.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/fixed_timeout.cpp.o.d"
  "/root/repo/src/detect/nfd_s.cpp" "src/detect/CMakeFiles/fd_detect.dir/nfd_s.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/nfd_s.cpp.o.d"
  "/root/repo/src/detect/phi_accrual.cpp" "src/detect/CMakeFiles/fd_detect.dir/phi_accrual.cpp.o" "gcc" "src/detect/CMakeFiles/fd_detect.dir/phi_accrual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

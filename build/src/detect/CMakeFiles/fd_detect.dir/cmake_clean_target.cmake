file(REMOVE_RECURSE
  "libfd_detect.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/fd_core.dir/adaptive_multi_window.cpp.o"
  "CMakeFiles/fd_core.dir/adaptive_multi_window.cpp.o.d"
  "CMakeFiles/fd_core.dir/factory.cpp.o"
  "CMakeFiles/fd_core.dir/factory.cpp.o.d"
  "CMakeFiles/fd_core.dir/multi_window.cpp.o"
  "CMakeFiles/fd_core.dir/multi_window.cpp.o.d"
  "CMakeFiles/fd_core.dir/shared_margin.cpp.o"
  "CMakeFiles/fd_core.dir/shared_margin.cpp.o.d"
  "libfd_core.a"
  "libfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_multi_window.cpp" "src/core/CMakeFiles/fd_core.dir/adaptive_multi_window.cpp.o" "gcc" "src/core/CMakeFiles/fd_core.dir/adaptive_multi_window.cpp.o.d"
  "/root/repo/src/core/factory.cpp" "src/core/CMakeFiles/fd_core.dir/factory.cpp.o" "gcc" "src/core/CMakeFiles/fd_core.dir/factory.cpp.o.d"
  "/root/repo/src/core/multi_window.cpp" "src/core/CMakeFiles/fd_core.dir/multi_window.cpp.o" "gcc" "src/core/CMakeFiles/fd_core.dir/multi_window.cpp.o.d"
  "/root/repo/src/core/shared_margin.cpp" "src/core/CMakeFiles/fd_core.dir/shared_margin.cpp.o" "gcc" "src/core/CMakeFiles/fd_core.dir/shared_margin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/fd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

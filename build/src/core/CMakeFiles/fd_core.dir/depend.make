# Empty dependencies file for fd_core.
# This may be replaced when dependencies are built.

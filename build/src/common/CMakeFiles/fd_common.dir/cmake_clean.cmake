file(REMOVE_RECURSE
  "CMakeFiles/fd_common.dir/math.cpp.o"
  "CMakeFiles/fd_common.dir/math.cpp.o.d"
  "CMakeFiles/fd_common.dir/quantile.cpp.o"
  "CMakeFiles/fd_common.dir/quantile.cpp.o.d"
  "CMakeFiles/fd_common.dir/rng.cpp.o"
  "CMakeFiles/fd_common.dir/rng.cpp.o.d"
  "CMakeFiles/fd_common.dir/table.cpp.o"
  "CMakeFiles/fd_common.dir/table.cpp.o.d"
  "CMakeFiles/fd_common.dir/time.cpp.o"
  "CMakeFiles/fd_common.dir/time.cpp.o.d"
  "libfd_common.a"
  "libfd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libfd_common.a"
)

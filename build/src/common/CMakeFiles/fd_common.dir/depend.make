# Empty dependencies file for fd_common.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/analysis.cpp" "src/trace/CMakeFiles/fd_trace.dir/analysis.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/analysis.cpp.o.d"
  "/root/repo/src/trace/delay_model.cpp" "src/trace/CMakeFiles/fd_trace.dir/delay_model.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/delay_model.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/trace/CMakeFiles/fd_trace.dir/generator.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/generator.cpp.o.d"
  "/root/repo/src/trace/heartbeat.cpp" "src/trace/CMakeFiles/fd_trace.dir/heartbeat.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/heartbeat.cpp.o.d"
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/fd_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/loss_model.cpp" "src/trace/CMakeFiles/fd_trace.dir/loss_model.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/loss_model.cpp.o.d"
  "/root/repo/src/trace/scenario.cpp" "src/trace/CMakeFiles/fd_trace.dir/scenario.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/scenario.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/fd_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/fd_trace.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

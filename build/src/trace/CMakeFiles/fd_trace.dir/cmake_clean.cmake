file(REMOVE_RECURSE
  "CMakeFiles/fd_trace.dir/analysis.cpp.o"
  "CMakeFiles/fd_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/fd_trace.dir/delay_model.cpp.o"
  "CMakeFiles/fd_trace.dir/delay_model.cpp.o.d"
  "CMakeFiles/fd_trace.dir/generator.cpp.o"
  "CMakeFiles/fd_trace.dir/generator.cpp.o.d"
  "CMakeFiles/fd_trace.dir/heartbeat.cpp.o"
  "CMakeFiles/fd_trace.dir/heartbeat.cpp.o.d"
  "CMakeFiles/fd_trace.dir/io.cpp.o"
  "CMakeFiles/fd_trace.dir/io.cpp.o.d"
  "CMakeFiles/fd_trace.dir/loss_model.cpp.o"
  "CMakeFiles/fd_trace.dir/loss_model.cpp.o.d"
  "CMakeFiles/fd_trace.dir/scenario.cpp.o"
  "CMakeFiles/fd_trace.dir/scenario.cpp.o.d"
  "CMakeFiles/fd_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/fd_trace.dir/trace_stats.cpp.o.d"
  "libfd_trace.a"
  "libfd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

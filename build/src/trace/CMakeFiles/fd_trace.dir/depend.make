# Empty dependencies file for fd_trace.
# This may be replaced when dependencies are built.

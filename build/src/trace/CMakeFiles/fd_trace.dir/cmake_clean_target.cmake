file(REMOVE_RECURSE
  "libfd_trace.a"
)

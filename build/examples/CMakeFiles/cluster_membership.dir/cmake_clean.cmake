file(REMOVE_RECURSE
  "CMakeFiles/cluster_membership.dir/cluster_membership.cpp.o"
  "CMakeFiles/cluster_membership.dir/cluster_membership.cpp.o.d"
  "cluster_membership"
  "cluster_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

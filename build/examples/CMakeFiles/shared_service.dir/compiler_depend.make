# Empty compiler generated dependencies file for shared_service.
# This may be replaced when dependencies are built.

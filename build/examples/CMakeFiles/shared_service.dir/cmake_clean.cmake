file(REMOVE_RECURSE
  "CMakeFiles/shared_service.dir/shared_service.cpp.o"
  "CMakeFiles/shared_service.dir/shared_service.cpp.o.d"
  "shared_service"
  "shared_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/qos_planning.cpp" "examples/CMakeFiles/qos_planning.dir/qos_planning.cpp.o" "gcc" "examples/CMakeFiles/qos_planning.dir/qos_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/fd_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/fd_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/fd_config.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_qos.dir/qos/crash_experiment_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/crash_experiment_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/evaluator_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/evaluator_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/intervals_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/intervals_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/mistake_set_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/mistake_set_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/parallel_eval_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/parallel_eval_test.cpp.o.d"
  "CMakeFiles/test_qos.dir/qos/subsample_test.cpp.o"
  "CMakeFiles/test_qos.dir/qos/subsample_test.cpp.o.d"
  "test_qos"
  "test_qos.pdb"
  "test_qos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_service.dir/service/fd_service_test.cpp.o"
  "CMakeFiles/test_service.dir/service/fd_service_test.cpp.o.d"
  "CMakeFiles/test_service.dir/service/membership_test.cpp.o"
  "CMakeFiles/test_service.dir/service/membership_test.cpp.o.d"
  "CMakeFiles/test_service.dir/service/monitor_test.cpp.o"
  "CMakeFiles/test_service.dir/service/monitor_test.cpp.o.d"
  "CMakeFiles/test_service.dir/service/sender_test.cpp.o"
  "CMakeFiles/test_service.dir/service/sender_test.cpp.o.d"
  "CMakeFiles/test_service.dir/service/trace_recorder_test.cpp.o"
  "CMakeFiles/test_service.dir/service/trace_recorder_test.cpp.o.d"
  "test_service"
  "test_service.pdb"
  "test_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/analysis_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/generator_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/generator_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/heartbeat_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/heartbeat_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/io_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/io_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/models_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/models_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/scenario_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/scenario_test.cpp.o.d"
  "CMakeFiles/test_trace.dir/trace/stats_test.cpp.o"
  "CMakeFiles/test_trace.dir/trace/stats_test.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
  "test_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

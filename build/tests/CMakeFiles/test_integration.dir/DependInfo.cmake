
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/eq13_property_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/eq13_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/eq13_property_test.cpp.o.d"
  "/root/repo/tests/integration/eq13_random_traces_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/eq13_random_traces_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/eq13_random_traces_test.cpp.o.d"
  "/root/repo/tests/integration/failure_injection_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o.d"
  "/root/repo/tests/integration/golden_regression_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/golden_regression_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/golden_regression_test.cpp.o.d"
  "/root/repo/tests/integration/live_vs_replay_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/live_vs_replay_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/live_vs_replay_test.cpp.o.d"
  "/root/repo/tests/integration/replay_properties_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/replay_properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/replay_properties_test.cpp.o.d"
  "/root/repo/tests/integration/shared_service_qos_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/shared_service_qos_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/shared_service_qos_test.cpp.o.d"
  "/root/repo/tests/integration/udp_end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/udp_end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/udp_end_to_end_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/fd_service.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/fd_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/fd_config.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/fd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/fd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/eq13_property_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/eq13_property_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/eq13_random_traces_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/eq13_random_traces_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/failure_injection_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/golden_regression_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/golden_regression_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/live_vs_replay_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/live_vs_replay_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/replay_properties_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/replay_properties_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/shared_service_qos_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/shared_service_qos_test.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/udp_end_to_end_test.cpp.o"
  "CMakeFiles/test_integration.dir/integration/udp_end_to_end_test.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
  "test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_detect.dir/detect/bertier_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/bertier_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/chen_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/chen_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/contract_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/contract_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/ed_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/ed_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/estimator_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/estimator_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/fixed_timeout_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/fixed_timeout_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/nfd_s_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/nfd_s_test.cpp.o.d"
  "CMakeFiles/test_detect.dir/detect/phi_test.cpp.o"
  "CMakeFiles/test_detect.dir/detect/phi_test.cpp.o.d"
  "test_detect"
  "test_detect.pdb"
  "test_detect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig07_comparison_pa.dir/fig07_comparison_pa.cpp.o"
  "CMakeFiles/fig07_comparison_pa.dir/fig07_comparison_pa.cpp.o.d"
  "fig07_comparison_pa"
  "fig07_comparison_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_comparison_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig07_comparison_pa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06b_comparison_lan.dir/fig06b_comparison_lan.cpp.o"
  "CMakeFiles/fig06b_comparison_lan.dir/fig06b_comparison_lan.cpp.o.d"
  "fig06b_comparison_lan"
  "fig06b_comparison_lan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06b_comparison_lan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig06b_comparison_lan.
# This may be replaced when dependencies are built.

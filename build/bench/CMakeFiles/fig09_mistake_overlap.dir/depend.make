# Empty dependencies file for fig09_mistake_overlap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig09_mistake_overlap.dir/fig09_mistake_overlap.cpp.o"
  "CMakeFiles/fig09_mistake_overlap.dir/fig09_mistake_overlap.cpp.o.d"
  "fig09_mistake_overlap"
  "fig09_mistake_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_mistake_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

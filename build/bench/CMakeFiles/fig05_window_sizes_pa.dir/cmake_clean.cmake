file(REMOVE_RECURSE
  "CMakeFiles/fig05_window_sizes_pa.dir/fig05_window_sizes_pa.cpp.o"
  "CMakeFiles/fig05_window_sizes_pa.dir/fig05_window_sizes_pa.cpp.o.d"
  "fig05_window_sizes_pa"
  "fig05_window_sizes_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_window_sizes_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

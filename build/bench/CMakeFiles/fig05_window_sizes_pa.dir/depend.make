# Empty dependencies file for fig05_window_sizes_pa.
# This may be replaced when dependencies are built.

# Empty dependencies file for crash_detection.
# This may be replaced when dependencies are built.

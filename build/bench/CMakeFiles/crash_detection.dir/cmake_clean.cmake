file(REMOVE_RECURSE
  "CMakeFiles/crash_detection.dir/crash_detection.cpp.o"
  "CMakeFiles/crash_detection.dir/crash_detection.cpp.o.d"
  "crash_detection"
  "crash_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

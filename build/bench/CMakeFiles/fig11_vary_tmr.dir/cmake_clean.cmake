file(REMOVE_RECURSE
  "CMakeFiles/fig11_vary_tmr.dir/fig11_vary_tmr.cpp.o"
  "CMakeFiles/fig11_vary_tmr.dir/fig11_vary_tmr.cpp.o.d"
  "fig11_vary_tmr"
  "fig11_vary_tmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vary_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_vary_tmr.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig10_vary_td.
# This may be replaced when dependencies are built.

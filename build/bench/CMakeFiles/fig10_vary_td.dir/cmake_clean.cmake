file(REMOVE_RECURSE
  "CMakeFiles/fig10_vary_td.dir/fig10_vary_td.cpp.o"
  "CMakeFiles/fig10_vary_td.dir/fig10_vary_td.cpp.o.d"
  "fig10_vary_td"
  "fig10_vary_td.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vary_td.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

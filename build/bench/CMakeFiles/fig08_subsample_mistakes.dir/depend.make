# Empty dependencies file for fig08_subsample_mistakes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig08_subsample_mistakes.dir/fig08_subsample_mistakes.cpp.o"
  "CMakeFiles/fig08_subsample_mistakes.dir/fig08_subsample_mistakes.cpp.o.d"
  "fig08_subsample_mistakes"
  "fig08_subsample_mistakes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_subsample_mistakes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/reproduction_summary.dir/reproduction_summary.cpp.o"
  "CMakeFiles/reproduction_summary.dir/reproduction_summary.cpp.o.d"
  "reproduction_summary"
  "reproduction_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduction_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

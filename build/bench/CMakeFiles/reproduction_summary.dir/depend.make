# Empty dependencies file for reproduction_summary.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig04_window_sizes_tmr.
# This may be replaced when dependencies are built.

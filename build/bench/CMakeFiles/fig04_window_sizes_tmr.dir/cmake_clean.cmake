file(REMOVE_RECURSE
  "CMakeFiles/fig04_window_sizes_tmr.dir/fig04_window_sizes_tmr.cpp.o"
  "CMakeFiles/fig04_window_sizes_tmr.dir/fig04_window_sizes_tmr.cpp.o.d"
  "fig04_window_sizes_tmr"
  "fig04_window_sizes_tmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_window_sizes_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig12_vary_tm.dir/fig12_vary_tm.cpp.o"
  "CMakeFiles/fig12_vary_tm.dir/fig12_vary_tm.cpp.o.d"
  "fig12_vary_tm"
  "fig12_vary_tm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_tm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/service_live_load.dir/service_live_load.cpp.o"
  "CMakeFiles/service_live_load.dir/service_live_load.cpp.o.d"
  "service_live_load"
  "service_live_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_live_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_windows.dir/ablation_windows.cpp.o"
  "CMakeFiles/ablation_windows.dir/ablation_windows.cpp.o.d"
  "ablation_windows"
  "ablation_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig06_comparison_tmr.dir/fig06_comparison_tmr.cpp.o"
  "CMakeFiles/fig06_comparison_tmr.dir/fig06_comparison_tmr.cpp.o.d"
  "fig06_comparison_tmr"
  "fig06_comparison_tmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_comparison_tmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

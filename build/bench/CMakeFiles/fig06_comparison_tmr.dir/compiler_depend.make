# Empty compiler generated dependencies file for fig06_comparison_tmr.
# This may be replaced when dependencies are built.

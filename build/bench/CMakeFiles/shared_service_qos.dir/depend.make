# Empty dependencies file for shared_service_qos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/shared_service_qos.dir/shared_service_qos.cpp.o"
  "CMakeFiles/shared_service_qos.dir/shared_service_qos.cpp.o.d"
  "shared_service_qos"
  "shared_service_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_service_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/membership_scale.dir/membership_scale.cpp.o"
  "CMakeFiles/membership_scale.dir/membership_scale.cpp.o.d"
  "membership_scale"
  "membership_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

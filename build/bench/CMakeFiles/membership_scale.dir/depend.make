# Empty dependencies file for membership_scale.
# This may be replaced when dependencies are built.

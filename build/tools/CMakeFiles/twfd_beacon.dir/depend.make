# Empty dependencies file for twfd_beacon.
# This may be replaced when dependencies are built.

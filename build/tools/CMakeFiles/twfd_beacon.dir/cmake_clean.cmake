file(REMOVE_RECURSE
  "CMakeFiles/twfd_beacon.dir/twfd_beacon.cpp.o"
  "CMakeFiles/twfd_beacon.dir/twfd_beacon.cpp.o.d"
  "twfd_beacon"
  "twfd_beacon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twfd_beacon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/twfd_record.dir/twfd_record.cpp.o"
  "CMakeFiles/twfd_record.dir/twfd_record.cpp.o.d"
  "twfd_record"
  "twfd_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twfd_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

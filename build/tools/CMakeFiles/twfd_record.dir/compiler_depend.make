# Empty compiler generated dependencies file for twfd_record.
# This may be replaced when dependencies are built.

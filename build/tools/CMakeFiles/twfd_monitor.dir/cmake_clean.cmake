file(REMOVE_RECURSE
  "CMakeFiles/twfd_monitor.dir/twfd_monitor.cpp.o"
  "CMakeFiles/twfd_monitor.dir/twfd_monitor.cpp.o.d"
  "twfd_monitor"
  "twfd_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twfd_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for twfd_monitor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/twfd_replay.dir/twfd_replay.cpp.o"
  "CMakeFiles/twfd_replay.dir/twfd_replay.cpp.o.d"
  "twfd_replay"
  "twfd_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twfd_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

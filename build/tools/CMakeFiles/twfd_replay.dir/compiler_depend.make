# Empty compiler generated dependencies file for twfd_replay.
# This may be replaced when dependencies are built.
